#include "spatial/spatial_join.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stps {
namespace {

std::vector<Rect> RandomRects(Rng& rng, size_t count, double max_side) {
  std::vector<Rect> rects(count);
  for (auto& r : rects) {
    const double x = rng.Uniform(0, 100), y = rng.Uniform(0, 100);
    r = {x, y, x + rng.Uniform(0, max_side), y + rng.Uniform(0, max_side)};
  }
  return rects;
}

TEST(RectSelfJoinTest, MatchesBruteForce) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto rects = RandomRects(rng, 120, 12);
    std::vector<std::pair<uint32_t, uint32_t>> expected;
    for (uint32_t i = 0; i < rects.size(); ++i) {
      for (uint32_t j = i + 1; j < rects.size(); ++j) {
        if (rects[i].Intersects(rects[j])) expected.emplace_back(i, j);
      }
    }
    EXPECT_EQ(RectSelfJoin(rects), expected);
  }
}

TEST(RectSelfJoinTest, EdgeTouchCounts) {
  const std::vector<Rect> rects = {{0, 0, 1, 1}, {1, 0, 2, 1}, {3, 3, 4, 4}};
  const auto result = RectSelfJoin(rects);
  EXPECT_EQ(result,
            (std::vector<std::pair<uint32_t, uint32_t>>{{0, 1}}));
}

TEST(RectSelfJoinTest, DegenerateInputs) {
  EXPECT_TRUE(RectSelfJoin({}).empty());
  EXPECT_TRUE(RectSelfJoin({{0, 0, 1, 1}}).empty());
}

TEST(RectCrossJoinTest, MatchesBruteForce) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const auto left = RandomRects(rng, 70, 15);
    const auto right = RandomRects(rng, 90, 15);
    std::vector<std::pair<uint32_t, uint32_t>> expected;
    for (uint32_t i = 0; i < left.size(); ++i) {
      for (uint32_t j = 0; j < right.size(); ++j) {
        if (left[i].Intersects(right[j])) expected.emplace_back(i, j);
      }
    }
    EXPECT_EQ(RectCrossJoin(left, right), expected);
  }
}

TEST(RectCrossJoinTest, EmptySides) {
  EXPECT_TRUE(RectCrossJoin({}, {{0, 0, 1, 1}}).empty());
  EXPECT_TRUE(RectCrossJoin({{0, 0, 1, 1}}, {}).empty());
}

TEST(LeafAdjacencyTest, SelfIsAlwaysIncludedAndSymmetric) {
  Rng rng(9);
  std::vector<RTree::Entry> entries(400);
  for (uint32_t i = 0; i < entries.size(); ++i) {
    entries[i] = {{rng.Uniform(0, 50), rng.Uniform(0, 50)}, i};
  }
  const RTree tree = RTree::BulkLoad(entries, 20);
  const auto adjacency = LeafAdjacency(tree, 0.5);
  const auto leaves = tree.CollectLeaves();
  ASSERT_EQ(adjacency.size(), leaves.size());
  for (uint32_t l = 0; l < adjacency.size(); ++l) {
    EXPECT_TRUE(std::binary_search(adjacency[l].begin(), adjacency[l].end(),
                                   l));
    for (const uint32_t other : adjacency[l]) {
      EXPECT_TRUE(std::binary_search(adjacency[other].begin(),
                                     adjacency[other].end(), l));
      EXPECT_TRUE(leaves[l].mbr.Extended(0.5).Intersects(
          leaves[other].mbr.Extended(0.5)));
    }
  }
}

TEST(LeafAdjacencyTest, MatchesBruteForceIntersectionTest) {
  Rng rng(10);
  std::vector<RTree::Entry> entries(300);
  for (uint32_t i = 0; i < entries.size(); ++i) {
    entries[i] = {{rng.Uniform(0, 30), rng.Uniform(0, 30)}, i};
  }
  const RTree tree = RTree::BulkLoad(entries, 15);
  const double margin = 1.0;
  const auto adjacency = LeafAdjacency(tree, margin);
  const auto leaves = tree.CollectLeaves();
  for (uint32_t i = 0; i < leaves.size(); ++i) {
    for (uint32_t j = 0; j < leaves.size(); ++j) {
      const bool expected = leaves[i].mbr.Extended(margin).Intersects(
          leaves[j].mbr.Extended(margin));
      const bool actual = std::binary_search(adjacency[i].begin(),
                                             adjacency[i].end(), j);
      EXPECT_EQ(actual, expected) << "leaves " << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace stps
