#include "spatial/quadtree.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stps {
namespace {

std::vector<QuadTree::Entry> RandomEntries(Rng& rng, size_t count) {
  std::vector<QuadTree::Entry> entries(count);
  for (uint32_t i = 0; i < count; ++i) {
    entries[i] = {{rng.Uniform(0, 100), rng.Uniform(0, 100)}, i};
  }
  return entries;
}

TEST(QuadTreeTest, EmptyTree) {
  const QuadTree tree({0, 0, 1, 1}, 4);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<uint32_t> hits;
  tree.RangeQuery({0, 0, 1, 1}, &hits);
  EXPECT_TRUE(hits.empty());
  EXPECT_TRUE(tree.CollectLeaves().empty());
}

class QuadTreeCapacityTest : public ::testing::TestWithParam<int> {};

TEST_P(QuadTreeCapacityTest, BuildInvariantsAndRangeQueries) {
  const int capacity = GetParam();
  Rng rng(51);
  const auto entries = RandomEntries(rng, 800);
  const QuadTree tree = QuadTree::Build(entries, capacity);
  EXPECT_EQ(tree.size(), entries.size());
  EXPECT_TRUE(tree.CheckInvariants());
  size_t total = 0;
  for (const auto& leaf : tree.CollectLeaves()) {
    EXPECT_FALSE(leaf.entries.empty());
    EXPECT_TRUE(leaf.region.ContainsRect(leaf.mbr));
    total += leaf.entries.size();
  }
  EXPECT_EQ(total, entries.size());
  for (int q = 0; q < 40; ++q) {
    const double x = rng.Uniform(0, 90), y = rng.Uniform(0, 90);
    const Rect query{x, y, x + rng.Uniform(0, 25), y + rng.Uniform(0, 25)};
    std::vector<uint32_t> hits;
    tree.RangeQuery(query, &hits);
    std::sort(hits.begin(), hits.end());
    std::vector<uint32_t> expected;
    for (const auto& e : entries) {
      if (query.Contains(e.point)) expected.push_back(e.value);
    }
    EXPECT_EQ(hits, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, QuadTreeCapacityTest,
                         ::testing::Values(1, 4, 16, 64, 256));

TEST(QuadTreeTest, DuplicatePointsStopSplittingAtMaxDepth) {
  QuadTree tree({0, 0, 1, 1}, /*leaf_capacity=*/2, /*max_depth=*/6);
  for (uint32_t i = 0; i < 50; ++i) {
    tree.Insert({0.25, 0.25}, i);
  }
  EXPECT_EQ(tree.size(), 50u);
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<uint32_t> hits;
  tree.RangeQuery({0.25, 0.25, 0.25, 0.25}, &hits);
  EXPECT_EQ(hits.size(), 50u);
}

TEST(QuadTreeTest, OutOfBoundsPointsAreClampedNotLost) {
  QuadTree tree({0, 0, 1, 1}, 4);
  tree.Insert({5.0, -3.0}, 7);
  EXPECT_EQ(tree.size(), 1u);
  std::vector<uint32_t> hits;
  tree.RangeQuery({0, 0, 1, 1}, &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
}

TEST(QuadTreeTest, LeavesAreDisjointRegions) {
  Rng rng(52);
  const auto entries = RandomEntries(rng, 500);
  const QuadTree tree = QuadTree::Build(entries, 16);
  const auto leaves = tree.CollectLeaves();
  for (uint32_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(leaves[i].ordinal, i);
    for (uint32_t j = i + 1; j < leaves.size(); ++j) {
      // Quadrant interiors never overlap (boundaries may touch).
      const Rect inter = leaves[i].region.Intersection(leaves[j].region);
      if (!inter.IsEmpty()) {
        EXPECT_DOUBLE_EQ(inter.Area(), 0.0)
            << "leaves " << i << " and " << j << " overlap";
      }
    }
  }
}

TEST(QuadTreeTest, CapacityOneDegeneratesGracefully) {
  QuadTree tree({0, 0, 1, 1}, 1, /*max_depth=*/10);
  Rng rng(53);
  for (uint32_t i = 0; i < 100; ++i) {
    tree.Insert({rng.NextDouble(), rng.NextDouble()}, i);
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants());
}

}  // namespace
}  // namespace stps
