#include "spatial/grid.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace stps {
namespace {

TEST(GridGeometryTest, CellIdsAreRowMajorBottomUp) {
  const GridGeometry grid({0, 0, 5, 4}, 1.0);
  EXPECT_EQ(grid.columns(), 5);
  EXPECT_EQ(grid.rows(), 4);
  EXPECT_EQ(grid.CellOf({0.5, 0.5}), 0);
  EXPECT_EQ(grid.CellOf({4.5, 0.5}), 4);
  EXPECT_EQ(grid.CellOf({0.5, 1.5}), 5);
  EXPECT_EQ(grid.CellOf({4.5, 3.5}), 19);
}

TEST(GridGeometryTest, PointsOnMaxBoundaryClampIntoGrid) {
  const GridGeometry grid({0, 0, 5, 4}, 1.0);
  EXPECT_EQ(grid.CellOf({5.0, 4.0}), 19);
  EXPECT_EQ(grid.CellOf({0.0, 0.0}), 0);
}

TEST(GridGeometryTest, HugeSparseDomainsDoNotOverflow) {
  // Country-scale extent with eps_loc cells: billions of cells.
  const GridGeometry grid({-125, 25, -67, 49}, 0.001);
  EXPECT_GT(grid.columns() * grid.rows(), 1000000000LL);
  const CellId c = grid.CellOf({-100.0, 40.0});
  EXPECT_GE(c, 0);
  EXPECT_EQ(grid.RowOf(c) * grid.columns() + grid.ColumnOf(c), c);
}

TEST(GridGeometryTest, NeighborhoodInteriorHasNineCells) {
  const GridGeometry grid({0, 0, 5, 5}, 1.0);
  std::vector<CellId> n;
  grid.AppendNeighborhood(grid.IdOf(2, 2), true, &n);
  EXPECT_EQ(n.size(), 9u);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
  grid.AppendNeighborhood(grid.IdOf(2, 2), false, &n);
  EXPECT_EQ(n.size(), 9u + 8u);
}

TEST(GridGeometryTest, NeighborhoodClipsAtCorners) {
  const GridGeometry grid({0, 0, 5, 5}, 1.0);
  std::vector<CellId> n;
  grid.AppendNeighborhood(grid.IdOf(0, 0), true, &n);
  EXPECT_EQ(n.size(), 4u);
  n.clear();
  grid.AppendNeighborhood(grid.IdOf(4, 4), true, &n);
  EXPECT_EQ(n.size(), 4u);
}

TEST(GridGeometryTest, LowerNeighborsMatchPPJCDefinition) {
  const GridGeometry grid({0, 0, 5, 5}, 1.0);
  std::vector<CellId> n;
  grid.AppendLowerNeighbors(grid.IdOf(2, 2), &n);
  // SW, S, SE, W.
  const std::vector<CellId> expected = {grid.IdOf(1, 1), grid.IdOf(2, 1),
                                        grid.IdOf(3, 1), grid.IdOf(1, 2)};
  EXPECT_EQ(n, expected);
  n.clear();
  grid.AppendLowerNeighbors(grid.IdOf(0, 0), &n);
  EXPECT_TRUE(n.empty());
}

// The central property behind PPJ-B's correctness: over a full traversal,
// the odd/even row neighbourhoods enumerate every unordered pair of
// adjacent cells (and every self pair) exactly once.
TEST(GridGeometryTest, ParityTraversalCoversEachAdjacentPairExactlyOnce) {
  const GridGeometry grid({0, 0, 7, 6}, 1.0);
  std::map<std::pair<CellId, CellId>, int> covered;
  std::vector<CellId> n;
  for (int64_t row = 0; row < grid.rows(); ++row) {
    const bool odd = (row % 2) == 0;  // paper rows are 1-based
    for (int64_t col = 0; col < grid.columns(); ++col) {
      const CellId c = grid.IdOf(col, row);
      n.clear();
      if (odd) {
        grid.AppendOddRowNeighbors(c, &n);
      } else {
        grid.AppendEvenRowNeighbors(c, &n);
      }
      for (const CellId other : n) {
        const auto key = std::minmax(c, other);
        ++covered[{key.first, key.second}];
      }
    }
  }
  // Expect exactly the adjacency relation (incl. self loops), each once.
  for (int64_t row = 0; row < grid.rows(); ++row) {
    for (int64_t col = 0; col < grid.columns(); ++col) {
      const CellId c = grid.IdOf(col, row);
      std::vector<CellId> adjacent;
      grid.AppendNeighborhood(c, true, &adjacent);
      for (const CellId other : adjacent) {
        if (other < c) continue;  // count each unordered pair once
        const auto it = covered.find({c, other});
        ASSERT_NE(it, covered.end())
            << "pair (" << c << "," << other << ") never joined";
        EXPECT_EQ(it->second, 1)
            << "pair (" << c << "," << other << ") joined twice";
        covered.erase(it);
      }
    }
  }
  EXPECT_TRUE(covered.empty()) << "non-adjacent pairs were joined";
}

TEST(GridGeometryTest, SingleRowAndSingleColumnGrids) {
  const GridGeometry row_grid({0, 0, 10, 0.5}, 1.0);
  EXPECT_EQ(row_grid.rows(), 1);
  std::vector<CellId> n;
  row_grid.AppendOddRowNeighbors(3, &n);
  EXPECT_EQ(n, (std::vector<CellId>{2, 3}));  // W and self, no E

  const GridGeometry col_grid({0, 0, 0.5, 10}, 1.0);
  EXPECT_EQ(col_grid.columns(), 1);
  n.clear();
  col_grid.AppendEvenRowNeighbors(col_grid.IdOf(0, 1), &n);
  EXPECT_EQ(n, (std::vector<CellId>{col_grid.IdOf(0, 1)}));  // self only
}

}  // namespace
}  // namespace stps
