#include "spatial/grid.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace stps {
namespace {

TEST(GridGeometryTest, CellIdsAreRowMajorBottomUp) {
  const GridGeometry grid({0, 0, 5, 4}, 1.0);
  EXPECT_EQ(grid.columns(), 5);
  EXPECT_EQ(grid.rows(), 4);
  EXPECT_EQ(grid.CellOf({0.5, 0.5}), 0);
  EXPECT_EQ(grid.CellOf({4.5, 0.5}), 4);
  EXPECT_EQ(grid.CellOf({0.5, 1.5}), 5);
  EXPECT_EQ(grid.CellOf({4.5, 3.5}), 19);
}

TEST(GridGeometryTest, PointsOnMaxBoundaryClampIntoGrid) {
  const GridGeometry grid({0, 0, 5, 4}, 1.0);
  EXPECT_EQ(grid.CellOf({5.0, 4.0}), 19);
  EXPECT_EQ(grid.CellOf({0.0, 0.0}), 0);
}

TEST(GridGeometryTest, HugeSparseDomainsDoNotOverflow) {
  // Country-scale extent with eps_loc cells: billions of cells.
  const GridGeometry grid({-125, 25, -67, 49}, 0.001);
  EXPECT_GT(grid.columns() * grid.rows(), 1000000000LL);
  const CellId c = grid.CellOf({-100.0, 40.0});
  EXPECT_GE(c, 0);
  EXPECT_EQ(grid.RowOf(c) * grid.columns() + grid.ColumnOf(c), c);
}

TEST(GridGeometryTest, NeighborhoodInteriorHasNineCells) {
  const GridGeometry grid({0, 0, 5, 5}, 1.0);
  std::vector<CellId> n;
  grid.AppendNeighborhood(grid.IdOf(2, 2), true, &n);
  EXPECT_EQ(n.size(), 9u);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
  grid.AppendNeighborhood(grid.IdOf(2, 2), false, &n);
  EXPECT_EQ(n.size(), 9u + 8u);
}

TEST(GridGeometryTest, NeighborhoodClipsAtCorners) {
  const GridGeometry grid({0, 0, 5, 5}, 1.0);
  std::vector<CellId> n;
  grid.AppendNeighborhood(grid.IdOf(0, 0), true, &n);
  EXPECT_EQ(n.size(), 4u);
  n.clear();
  grid.AppendNeighborhood(grid.IdOf(4, 4), true, &n);
  EXPECT_EQ(n.size(), 4u);
}

TEST(GridGeometryTest, LowerNeighborsMatchPPJCDefinition) {
  const GridGeometry grid({0, 0, 5, 5}, 1.0);
  std::vector<CellId> n;
  grid.AppendLowerNeighbors(grid.IdOf(2, 2), &n);
  // SW, S, SE, W.
  const std::vector<CellId> expected = {grid.IdOf(1, 1), grid.IdOf(2, 1),
                                        grid.IdOf(3, 1), grid.IdOf(1, 2)};
  EXPECT_EQ(n, expected);
  n.clear();
  grid.AppendLowerNeighbors(grid.IdOf(0, 0), &n);
  EXPECT_TRUE(n.empty());
}

// The central property behind PPJ-B's correctness: over a full traversal,
// the odd/even row neighbourhoods enumerate every unordered pair of
// adjacent cells (and every self pair) exactly once.
TEST(GridGeometryTest, ParityTraversalCoversEachAdjacentPairExactlyOnce) {
  const GridGeometry grid({0, 0, 7, 6}, 1.0);
  std::map<std::pair<CellId, CellId>, int> covered;
  std::vector<CellId> n;
  for (int64_t row = 0; row < grid.rows(); ++row) {
    const bool odd = (row % 2) == 0;  // paper rows are 1-based
    for (int64_t col = 0; col < grid.columns(); ++col) {
      const CellId c = grid.IdOf(col, row);
      n.clear();
      if (odd) {
        grid.AppendOddRowNeighbors(c, &n);
      } else {
        grid.AppendEvenRowNeighbors(c, &n);
      }
      for (const CellId other : n) {
        const auto key = std::minmax(c, other);
        ++covered[{key.first, key.second}];
      }
    }
  }
  // Expect exactly the adjacency relation (incl. self loops), each once.
  for (int64_t row = 0; row < grid.rows(); ++row) {
    for (int64_t col = 0; col < grid.columns(); ++col) {
      const CellId c = grid.IdOf(col, row);
      std::vector<CellId> adjacent;
      grid.AppendNeighborhood(c, true, &adjacent);
      for (const CellId other : adjacent) {
        if (other < c) continue;  // count each unordered pair once
        const auto it = covered.find({c, other});
        ASSERT_NE(it, covered.end())
            << "pair (" << c << "," << other << ") never joined";
        EXPECT_EQ(it->second, 1)
            << "pair (" << c << "," << other << ") joined twice";
        covered.erase(it);
      }
    }
  }
  EXPECT_TRUE(covered.empty()) << "non-adjacent pairs were joined";
}

TEST(GridGeometryTest, BoundaryPointsAreAssignedTheLowerCell) {
  // The cell extent is inflated by a few ULPs (see grid.cc), so a point
  // sitting exactly on an interior cell boundary divides to strictly less
  // than the integer index and lands in the lower cell.
  const GridGeometry grid({0, 0, 5, 4}, 1.0);
  EXPECT_EQ(grid.CellOf({1.0, 0.5}), grid.IdOf(0, 0));
  EXPECT_EQ(grid.CellOf({0.5, 1.0}), grid.IdOf(0, 0));
  EXPECT_EQ(grid.CellOf({2.0, 2.0}), grid.IdOf(1, 1));
  EXPECT_EQ(grid.CellOf({4.0, 3.0}), grid.IdOf(3, 2));
}

TEST(GridGeometryTest, OneCellGrids) {
  // Domain no larger than a single cell: every query degenerates to cell 0.
  for (const Rect bounds :
       {Rect{0, 0, 0.5, 0.5}, Rect{2, 3, 2, 3} /* single point */}) {
    const GridGeometry grid(bounds, 1.0);
    EXPECT_EQ(grid.columns(), 1);
    EXPECT_EQ(grid.rows(), 1);
    EXPECT_EQ(grid.CellOf({bounds.min_x, bounds.min_y}), 0);
    EXPECT_EQ(grid.CellOf({bounds.max_x, bounds.max_y}), 0);
    std::vector<CellId> n;
    grid.AppendNeighborhood(0, true, &n);
    EXPECT_EQ(n, (std::vector<CellId>{0}));
    n.clear();
    grid.AppendNeighborhood(0, false, &n);
    EXPECT_TRUE(n.empty());
    n.clear();
    grid.AppendLowerNeighbors(0, &n);
    EXPECT_TRUE(n.empty());
    n.clear();
    grid.AppendOddRowNeighbors(0, &n);
    EXPECT_EQ(n, (std::vector<CellId>{0}));  // self only
    n.clear();
    grid.AppendEvenRowNeighbors(0, &n);
    EXPECT_EQ(n, (std::vector<CellId>{0}));
  }
}

TEST(GridGeometryTest, LowerNeighborsClipOnEveryBorder) {
  const GridGeometry grid({0, 0, 5, 5}, 1.0);
  std::vector<CellId> n;
  // Bottom row, interior column: only W survives.
  grid.AppendLowerNeighbors(grid.IdOf(2, 0), &n);
  EXPECT_EQ(n, (std::vector<CellId>{grid.IdOf(1, 0)}));
  // Bottom-right corner: only W.
  n.clear();
  grid.AppendLowerNeighbors(grid.IdOf(4, 0), &n);
  EXPECT_EQ(n, (std::vector<CellId>{grid.IdOf(3, 0)}));
  // Left column, interior row: S and SE, no W/SW.
  n.clear();
  grid.AppendLowerNeighbors(grid.IdOf(0, 2), &n);
  EXPECT_EQ(n, (std::vector<CellId>{grid.IdOf(0, 1), grid.IdOf(1, 1)}));
  // Right column, interior row: SW, S, W — no SE.
  n.clear();
  grid.AppendLowerNeighbors(grid.IdOf(4, 2), &n);
  EXPECT_EQ(n, (std::vector<CellId>{grid.IdOf(3, 1), grid.IdOf(4, 1),
                                    grid.IdOf(3, 2)}));
  // Top-left corner: S and SE.
  n.clear();
  grid.AppendLowerNeighbors(grid.IdOf(0, 4), &n);
  EXPECT_EQ(n, (std::vector<CellId>{grid.IdOf(0, 3), grid.IdOf(1, 3)}));
}

// Filter soundness: any two points within cell_size of each other must land
// in the same or adjacent cells, including points exactly on cell
// boundaries and domains whose offset magnitude makes the per-cell division
// inexact. This is the property the conservative cell inflation exists for;
// without it, a pair at distance exactly cell_size straddling a boundary
// can end up two columns apart and every grid join silently drops it.
TEST(GridGeometryTest, AdjacencyIsSoundForPairsWithinCellSize) {
  const double cell = 0.1;  // not a power of two: division is inexact
  for (const double offset : {0.0, 1000.0, -777.7}) {
    const Rect bounds{offset, offset, offset + 10.0, offset + 10.0};
    const GridGeometry grid(bounds, cell);
    std::vector<Point> pts;
    // Adversarial placement: points exactly on multiples of cell_size
    // from the domain minimum, plus half-cell offsets.
    for (int i = 0; i < 40; ++i) {
      const double x = offset + cell * static_cast<double>(i);
      pts.push_back({x, offset});
      pts.push_back({x, offset + cell * 0.5});
      pts.push_back({offset, x});
    }
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t j = i + 1; j < pts.size(); ++j) {
        if (!WithinDistance(pts[i], pts[j], cell)) continue;
        const CellId ci = grid.CellOf(pts[i]);
        const CellId cj = grid.CellOf(pts[j]);
        EXPECT_LE(std::abs(grid.ColumnOf(ci) - grid.ColumnOf(cj)), 1)
            << "offset=" << offset << " i=" << i << " j=" << j;
        EXPECT_LE(std::abs(grid.RowOf(ci) - grid.RowOf(cj)), 1)
            << "offset=" << offset << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(GridGeometryTest, SingleRowAndSingleColumnGrids) {
  const GridGeometry row_grid({0, 0, 10, 0.5}, 1.0);
  EXPECT_EQ(row_grid.rows(), 1);
  std::vector<CellId> n;
  row_grid.AppendOddRowNeighbors(3, &n);
  EXPECT_EQ(n, (std::vector<CellId>{2, 3}));  // W and self, no E

  const GridGeometry col_grid({0, 0, 0.5, 10}, 1.0);
  EXPECT_EQ(col_grid.columns(), 1);
  n.clear();
  col_grid.AppendEvenRowNeighbors(col_grid.IdOf(0, 1), &n);
  EXPECT_EQ(n, (std::vector<CellId>{col_grid.IdOf(0, 1)}));  // self only
}

}  // namespace
}  // namespace stps
