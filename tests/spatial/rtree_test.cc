#include "spatial/rtree.h"

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stps {
namespace {

std::vector<RTree::Entry> RandomEntries(Rng& rng, size_t count) {
  std::vector<RTree::Entry> entries(count);
  for (uint32_t i = 0; i < count; ++i) {
    entries[i] = {{rng.Uniform(0, 100), rng.Uniform(0, 100)}, i};
  }
  return entries;
}

std::vector<uint32_t> BruteRange(const std::vector<RTree::Entry>& entries,
                                 const Rect& query) {
  std::vector<uint32_t> out;
  for (const auto& e : entries) {
    if (query.Contains(e.point)) out.push_back(e.value);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RTreeTest, EmptyTree) {
  const RTree tree(8);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<uint32_t> hits;
  tree.RangeQuery({0, 0, 1, 1}, &hits);
  EXPECT_TRUE(hits.empty());
  EXPECT_TRUE(tree.CollectLeaves().empty());
}

class RTreeFanoutTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeFanoutTest, BulkLoadInvariantsAndQueries) {
  const int fanout = GetParam();
  Rng rng(42);
  const auto entries = RandomEntries(rng, 1000);
  const RTree tree = RTree::BulkLoad(entries, fanout);
  EXPECT_EQ(tree.size(), entries.size());
  EXPECT_TRUE(tree.CheckInvariants());
  // Leaves partition the data.
  size_t total = 0;
  for (const auto& leaf : tree.CollectLeaves()) {
    EXPECT_LE(leaf.entries.size(), static_cast<size_t>(fanout));
    total += leaf.entries.size();
  }
  EXPECT_EQ(total, entries.size());
  // Random range queries match brute force.
  for (int q = 0; q < 50; ++q) {
    const double x = rng.Uniform(0, 90), y = rng.Uniform(0, 90);
    const Rect query{x, y, x + rng.Uniform(0, 20), y + rng.Uniform(0, 20)};
    std::vector<uint32_t> hits;
    tree.RangeQuery(query, &hits);
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(hits, BruteRange(entries, query));
  }
}

TEST_P(RTreeFanoutTest, InsertionInvariantsAndQueries) {
  const int fanout = GetParam();
  Rng rng(43);
  const auto entries = RandomEntries(rng, 600);
  RTree tree(fanout);
  for (const auto& e : entries) {
    tree.Insert(e.point, e.value);
  }
  EXPECT_EQ(tree.size(), entries.size());
  EXPECT_TRUE(tree.CheckInvariants());
  for (int q = 0; q < 30; ++q) {
    const double x = rng.Uniform(0, 90), y = rng.Uniform(0, 90);
    const Rect query{x, y, x + rng.Uniform(0, 25), y + rng.Uniform(0, 25)};
    std::vector<uint32_t> hits;
    tree.RangeQuery(query, &hits);
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(hits, BruteRange(entries, query));
  }
}

TEST_P(RTreeFanoutTest, MixedBulkLoadThenInsert) {
  const int fanout = GetParam();
  Rng rng(44);
  auto initial = RandomEntries(rng, 400);
  RTree tree = RTree::BulkLoad(initial, fanout);
  const auto extra = RandomEntries(rng, 200);
  for (uint32_t i = 0; i < extra.size(); ++i) {
    tree.Insert(extra[i].point, 1000 + i);
  }
  EXPECT_EQ(tree.size(), 600u);
  EXPECT_TRUE(tree.CheckInvariants());
  auto all = initial;
  for (uint32_t i = 0; i < extra.size(); ++i) {
    all.push_back({extra[i].point, 1000 + i});
  }
  const Rect query{20, 20, 60, 60};
  std::vector<uint32_t> hits;
  tree.RangeQuery(query, &hits);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, BruteRange(all, query));
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RTreeFanoutTest,
                         ::testing::Values(2, 4, 8, 16, 50, 128));

TEST(RTreeTest, RadiusQueryMatchesBruteForce) {
  Rng rng(45);
  const auto entries = RandomEntries(rng, 500);
  const RTree tree = RTree::BulkLoad(entries, 16);
  for (int q = 0; q < 30; ++q) {
    const Point c{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const double eps = rng.Uniform(1, 15);
    std::vector<uint32_t> hits;
    tree.RadiusQuery(c, eps, &hits);
    std::sort(hits.begin(), hits.end());
    std::vector<uint32_t> expected;
    for (const auto& e : entries) {
      if (WithinDistance(e.point, c, eps)) expected.push_back(e.value);
    }
    EXPECT_EQ(hits, expected);
  }
}

TEST(RTreeTest, DuplicatePointsAreAllRetained) {
  RTree tree(4);
  for (uint32_t i = 0; i < 20; ++i) {
    tree.Insert({1.0, 1.0}, i);
  }
  EXPECT_EQ(tree.size(), 20u);
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<uint32_t> hits;
  tree.RangeQuery({1, 1, 1, 1}, &hits);
  EXPECT_EQ(hits.size(), 20u);
}

TEST(RTreeTest, LeavesHaveSequentialOrdinalsAndTightMbrs) {
  Rng rng(46);
  const auto entries = RandomEntries(rng, 300);
  const RTree tree = RTree::BulkLoad(entries, 25);
  const auto leaves = tree.CollectLeaves();
  for (uint32_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(leaves[i].ordinal, i);
    for (const auto& e : leaves[i].entries) {
      EXPECT_TRUE(leaves[i].mbr.Contains(e.point));
    }
  }
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  Rng rng(47);
  const auto entries = RandomEntries(rng, 1000);
  const RTree tree = RTree::BulkLoad(entries, 10);
  // 1000 points at fanout 10: 100 leaves, height 3.
  EXPECT_GE(tree.Height(), 3);
  EXPECT_LE(tree.Height(), 4);
}


TEST(RTreeTest, NearestNeighborMatchesBruteForce) {
  Rng rng(48);
  const auto entries = RandomEntries(rng, 400);
  const RTree tree = RTree::BulkLoad(entries, 12);
  for (int q = 0; q < 100; ++q) {
    const Point query{rng.Uniform(-10, 110), rng.Uniform(-10, 110)};
    Point nearest;
    uint32_t value = 0;
    double distance = 0.0;
    ASSERT_TRUE(tree.NearestNeighbor(query, &nearest, &value, &distance));
    double best = std::numeric_limits<double>::infinity();
    for (const auto& e : entries) {
      best = std::min(best, Distance(e.point, query));
    }
    EXPECT_DOUBLE_EQ(distance, best);
    EXPECT_DOUBLE_EQ(Distance(nearest, query), best);
    EXPECT_DOUBLE_EQ(Distance(entries[value].point, query), best);
  }
}

TEST(RTreeTest, NearestNeighborOnEmptyTreeFails) {
  const RTree tree(8);
  Point nearest;
  uint32_t value;
  double distance;
  EXPECT_FALSE(tree.NearestNeighbor({0, 0}, &nearest, &value, &distance));
}

TEST(RTreeTest, NearestNeighborExactHit) {
  RTree tree(4);
  tree.Insert({1, 1}, 7);
  tree.Insert({5, 5}, 9);
  double distance = -1.0;
  uint32_t value = 0;
  ASSERT_TRUE(tree.NearestNeighbor({5, 5}, nullptr, &value, &distance));
  EXPECT_EQ(value, 9u);
  EXPECT_DOUBLE_EQ(distance, 0.0);
}

}  // namespace
}  // namespace stps
