// Differential tests for the batched eps_loc kernels (spatial/batch.h):
// the dispatched (possibly AVX2) kernels, the scalar reference loops, and
// the per-point WithinDistance predicate must agree verdict-for-verdict on
// adversarial inputs — unaligned block starts, tail lengths covering every
// residue of the vector width, and lattice coordinates nudged one ULP
// across the eps_loc boundary (the boundary-oracle recipe).

#include "spatial/batch.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "spatial/geometry.h"

namespace stps {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Lattice points at exact multiples of `pitch`, a third of them nudged
// one ULP in x — the same construction the boundary-oracle suite uses, so
// probe-to-point distances land exactly on, one ULP above, and one ULP
// below eps_loc.
struct TestPoints {
  std::vector<double> xs;
  std::vector<double> ys;
};

TestPoints MakeBoundaryPoints(size_t n, double pitch, uint64_t seed) {
  Rng rng(seed);
  TestPoints pts;
  pts.xs.reserve(n);
  pts.ys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x = pitch * static_cast<double>(rng.NextBelow(7));
    const double y = pitch * static_cast<double>(rng.NextBelow(7));
    const uint64_t nudge = rng.NextBelow(3);
    if (nudge == 1) x = std::nextafter(x, kInf);
    if (nudge == 2) x = std::nextafter(x, -kInf);
    pts.xs.push_back(x);
    pts.ys.push_back(y);
  }
  return pts;
}

// Probes on and next to lattice sites, so distances to the points above
// hit the exact-eps_loc cases.
std::vector<Point> MakeProbes(double pitch) {
  return {
      {0.0, 0.0},
      {pitch, 0.0},
      {pitch, pitch},
      {std::nextafter(pitch, kInf), 0.0},
      {std::nextafter(pitch, -kInf), pitch},
      {3.0 * pitch, 2.0 * pitch},
  };
}

// Thresholds on both sides of the realisable distances.
std::vector<double> MakeThresholds(double pitch) {
  return {
      pitch,
      std::nextafter(pitch, 0.0),
      std::nextafter(pitch, kInf),
      std::sqrt(2.0) * pitch,
      2.0 * pitch,
      0.0,
  };
}

class BatchKernelTest : public ::testing::TestWithParam<double> {};

// Dispatched contiguous kernels vs the scalar reference vs the per-point
// predicate, over every alignment offset and tail length 0..11 (covers
// every residue of the 4-lane AVX2 width, misaligned starts included).
TEST_P(BatchKernelTest, ContiguousMatchesScalarAndPredicate) {
  const double pitch = GetParam();
  const TestPoints pts = MakeBoundaryPoints(64, pitch, /*seed=*/11);
  std::vector<uint32_t> got(pts.xs.size());
  std::vector<uint32_t> want(pts.xs.size());
  for (const Point& probe : MakeProbes(pitch)) {
    for (const double eps : MakeThresholds(pitch)) {
      for (size_t offset = 0; offset < 8; ++offset) {
        for (size_t len = 0; len <= 11; ++len) {
          ASSERT_LE(offset + len, pts.xs.size());
          const double* xs = pts.xs.data() + offset;
          const double* ys = pts.ys.data() + offset;
          // Ground truth from the per-point predicate.
          size_t expected_count = 0;
          for (size_t i = 0; i < len; ++i) {
            want[expected_count] = static_cast<uint32_t>(i);
            if (WithinDistance(probe, {xs[i], ys[i]}, eps)) {
              ++expected_count;
            }
          }
          ASSERT_EQ(CountWithinEpsLoc(probe, xs, ys, len, eps),
                    expected_count)
              << "offset=" << offset << " len=" << len << " eps=" << eps;
          ASSERT_EQ(CountWithinEpsLocScalar(probe, xs, ys, len, eps),
                    expected_count);
          const size_t collected =
              CollectWithinEpsLoc(probe, xs, ys, len, eps, got.data());
          ASSERT_EQ(collected, expected_count);
          size_t w = 0;
          for (size_t i = 0; i < len; ++i) {
            if (WithinDistance(probe, {xs[i], ys[i]}, eps)) {
              ASSERT_EQ(got[w], static_cast<uint32_t>(i))
                  << "offset=" << offset << " len=" << len;
              ++w;
            }
          }
          ASSERT_EQ(
              CollectWithinEpsLocScalar(probe, xs, ys, len, eps, want.data()),
              expected_count);
          for (size_t i = 0; i < expected_count; ++i) {
            ASSERT_EQ(got[i], want[i]);
          }
        }
      }
    }
  }
}

// Gather kernels: arbitrary index subsets (repeats and out-of-order
// included) must agree with the per-point predicate, preserving idx order
// in the collected output.
TEST_P(BatchKernelTest, GatherMatchesScalarAndPredicate) {
  const double pitch = GetParam();
  const TestPoints pts = MakeBoundaryPoints(48, pitch, /*seed=*/23);
  Rng rng(29);
  for (const Point& probe : MakeProbes(pitch)) {
    for (const double eps : MakeThresholds(pitch)) {
      for (size_t len = 0; len <= 11; ++len) {
        std::vector<uint32_t> idx(len);
        for (size_t i = 0; i < len; ++i) {
          idx[i] = static_cast<uint32_t>(rng.NextBelow(pts.xs.size()));
        }
        size_t expected_count = 0;
        std::vector<uint32_t> expected;
        for (const uint32_t j : idx) {
          if (WithinDistance(probe, {pts.xs[j], pts.ys[j]}, eps)) {
            ++expected_count;
            expected.push_back(j);
          }
        }
        ASSERT_EQ(CountWithinEpsLoc(probe, pts.xs.data(), pts.ys.data(),
                                    std::span<const uint32_t>(idx), eps),
                  expected_count)
            << "len=" << len << " eps=" << eps;
        ASSERT_EQ(
            CountWithinEpsLocScalar(probe, pts.xs.data(), pts.ys.data(),
                                    std::span<const uint32_t>(idx), eps),
            expected_count);
        std::vector<uint32_t> got(len + 1, 0xdeadbeefu);
        ASSERT_EQ(CollectWithinEpsLoc(probe, pts.xs.data(), pts.ys.data(),
                                      std::span<const uint32_t>(idx), eps,
                                      got.data()),
                  expected_count);
        for (size_t i = 0; i < expected_count; ++i) {
          ASSERT_EQ(got[i], expected[i]) << "len=" << len;
        }
        std::vector<uint32_t> got_scalar(len + 1, 0u);
        ASSERT_EQ(
            CollectWithinEpsLocScalar(probe, pts.xs.data(), pts.ys.data(),
                                      std::span<const uint32_t>(idx), eps,
                                      got_scalar.data()),
            expected_count);
        for (size_t i = 0; i < expected_count; ++i) {
          ASSERT_EQ(got_scalar[i], expected[i]);
        }
      }
    }
  }
}

// Random (non-lattice) coordinates at larger block sizes: the dispatched
// and scalar kernels must stay bit-identical well past the tail logic.
TEST_P(BatchKernelTest, RandomBlocksDispatchEqualsScalar) {
  const double pitch = GetParam();
  Rng rng(101);
  for (const size_t n : {1u, 4u, 5u, 31u, 64u, 257u}) {
    TestPoints pts;
    for (size_t i = 0; i < n; ++i) {
      pts.xs.push_back(rng.NextDouble() * 10.0 * pitch);
      pts.ys.push_back(rng.NextDouble() * 10.0 * pitch);
    }
    const Point probe{rng.NextDouble() * 10.0 * pitch,
                      rng.NextDouble() * 10.0 * pitch};
    for (const double eps : MakeThresholds(pitch)) {
      const size_t want_count =
          CountWithinEpsLocScalar(probe, pts.xs.data(), pts.ys.data(), n, eps);
      ASSERT_EQ(CountWithinEpsLoc(probe, pts.xs.data(), pts.ys.data(), n, eps),
                want_count)
          << "n=" << n << " eps=" << eps;
      std::vector<uint32_t> got(n), want(n);
      ASSERT_EQ(CollectWithinEpsLoc(probe, pts.xs.data(), pts.ys.data(), n,
                                    eps, got.data()),
                want_count);
      ASSERT_EQ(CollectWithinEpsLocScalar(probe, pts.xs.data(), pts.ys.data(),
                                          n, eps, want.data()),
                want_count);
      for (size_t i = 0; i < want_count; ++i) ASSERT_EQ(got[i], want[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Pitches, BatchKernelTest,
                         ::testing::Values(0.125, 0.1, 0.3, 0.07));

TEST(ZOrderKeyTest, InterleavesAndOrdersNeighbours) {
  const Rect bounds{0.0, 0.0, 1.0, 1.0};
  // Corners: min maps to key 0; max maps to all 32 bits set.
  EXPECT_EQ(ZOrderKey(bounds, {0.0, 0.0}), 0u);
  EXPECT_EQ(ZOrderKey(bounds, {1.0, 1.0}), 0xffffffffu);
  // y occupies the odd bit positions: a pure-y point has only odd bits.
  const uint64_t y_only = ZOrderKey(bounds, {0.0, 1.0});
  EXPECT_EQ(y_only & 0x55555555u, 0u);
  EXPECT_EQ(y_only, 0xaaaaaaaau);
  const uint64_t x_only = ZOrderKey(bounds, {1.0, 0.0});
  EXPECT_EQ(x_only, 0x55555555u);
  // Quadrants sort in Z order: (lo,lo) < (hi,lo) < (lo,hi) < (hi,hi).
  const uint64_t q00 = ZOrderKey(bounds, {0.2, 0.2});
  const uint64_t q10 = ZOrderKey(bounds, {0.7, 0.2});
  const uint64_t q01 = ZOrderKey(bounds, {0.2, 0.7});
  const uint64_t q11 = ZOrderKey(bounds, {0.7, 0.7});
  EXPECT_LT(q00, q10);
  EXPECT_LT(q10, q01);
  EXPECT_LT(q01, q11);
}

TEST(ZOrderKeyTest, DegenerateBoundsAreSafe) {
  // Zero-extent bounds quantize everything to 0 instead of dividing by 0.
  const Rect degenerate{2.0, 3.0, 2.0, 3.0};
  EXPECT_EQ(ZOrderKey(degenerate, {2.0, 3.0}), 0u);
  EXPECT_EQ(ZOrderKey(degenerate, {5.0, -1.0}), 0u);
}

TEST(BatchDispatchTest, ReportsAPath) {
  // Smoke: the dispatch query must be callable and stable.
  EXPECT_EQ(BatchKernelsUseAvx2(), BatchKernelsUseAvx2());
}

}  // namespace
}  // namespace stps
