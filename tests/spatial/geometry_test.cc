#include "spatial/geometry.h"

#include <gtest/gtest.h>

namespace stps {
namespace {

TEST(PointTest, DistanceAndWithin) {
  const Point a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_TRUE(WithinDistance(a, b, 5.0));
  EXPECT_TRUE(WithinDistance(a, b, 5.1));
  EXPECT_FALSE(WithinDistance(a, b, 4.9));
  EXPECT_TRUE(WithinDistance(a, a, 0.0));
}

TEST(RectTest, EmptySentinel) {
  const Rect e = Rect::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(e.Area(), 0.0);
  Rect r = Rect::Empty();
  r.ExpandToInclude(Point{1, 2});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_EQ(r, Rect::FromPoint({1, 2}));
}

TEST(RectTest, ContainsAndIntersects) {
  const Rect r{0, 0, 2, 2};
  EXPECT_TRUE(r.Contains({1, 1}));
  EXPECT_TRUE(r.Contains({0, 0}));   // boundary inclusive
  EXPECT_TRUE(r.Contains({2, 2}));
  EXPECT_FALSE(r.Contains({2.001, 1}));
  EXPECT_TRUE(r.Intersects({2, 2, 3, 3}));  // corner touch
  EXPECT_TRUE(r.Intersects({1, 1, 5, 5}));
  EXPECT_FALSE(r.Intersects({2.1, 0, 3, 1}));
  EXPECT_TRUE(r.ContainsRect({0.5, 0.5, 1.5, 1.5}));
  EXPECT_FALSE(r.ContainsRect({0.5, 0.5, 2.5, 1.5}));
}

TEST(RectTest, IntersectionAndExpansion) {
  const Rect a{0, 0, 2, 2}, b{1, 1, 3, 3};
  const Rect i = a.Intersection(b);
  EXPECT_EQ(i, (Rect{1, 1, 2, 2}));
  EXPECT_TRUE(a.Intersection({5, 5, 6, 6}).IsEmpty());
  Rect grown = a;
  grown.ExpandToInclude(b);
  EXPECT_EQ(grown, (Rect{0, 0, 3, 3}));
}

TEST(RectTest, ExtendedGrowsAllSides) {
  const Rect r{1, 2, 3, 4};
  const Rect e = r.Extended(0.5);
  EXPECT_DOUBLE_EQ(e.min_x, 0.5);
  EXPECT_DOUBLE_EQ(e.min_y, 1.5);
  EXPECT_DOUBLE_EQ(e.max_x, 3.5);
  EXPECT_DOUBLE_EQ(e.max_y, 4.5);
  // Extended is a filter box: it must round outward, never inward, so the
  // box provably covers every point within `margin` of the rectangle.
  EXPECT_LE(e.min_x, 1.0 - 0.5);
  EXPECT_LE(e.min_y, 2.0 - 0.5);
  EXPECT_GE(e.max_x, 3.0 + 0.5);
  EXPECT_GE(e.max_y, 4.0 + 0.5);
}

TEST(RectTest, AreaAndEnlargement) {
  const Rect r{0, 0, 2, 3};
  EXPECT_DOUBLE_EQ(r.Area(), 6.0);
  EXPECT_DOUBLE_EQ(r.EnlargementFor({0, 0, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(r.EnlargementFor({0, 0, 4, 3}), 6.0);
}

TEST(MinDistanceTest, InsideOnEdgeAndOutside) {
  const Rect r{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(MinDistance({1, 1}, r), 0.0);
  EXPECT_DOUBLE_EQ(MinDistance({2, 1}, r), 0.0);
  EXPECT_DOUBLE_EQ(MinDistance({5, 1}, r), 3.0);
  EXPECT_DOUBLE_EQ(MinDistance({5, 6}, r), 5.0);  // 3-4-5 corner
}

}  // namespace
}  // namespace stps
