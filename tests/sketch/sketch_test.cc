// Property tests for the per-user sketch layer (sketch/sketch.h):
//
//  * Soundness: candidate generation never drops a pair the exact path
//    reports — over fuzzed databases (with duplicate-token and empty-doc
//    users), at multiple eps_loc / eps_doc / eps_u, for both the
//    threshold join and top-k, and under deliberately collision-heavy
//    sketch parameters. This is the property the whole layer rests on:
//    the band index is a deterministic filter (shared token -> shared
//    band), so unlike classical MinHash-LSH banding it has no false
//    negatives to tolerate.
//  * Occupancy rejections are separation proofs: a pair with any object
//    pair within eps_loc is never OccupancyClose-rejected.
//  * MinHash union-Jaccard estimates stay within Chernoff-style bounds
//    at the fixed build seed.
//  * Count-min never under-counts.

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/stpsjoin.h"
#include "sketch/count_min.h"
#include "sketch/sketch.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

// A random database with the sketch layer's adversarial ingredients
// mixed in: users whose objects repeat tokens, users with empty docs
// (alone and mixed with real docs), and duplicate locations.
ObjectDatabase BuildFuzzDatabase(uint64_t seed) {
  Rng rng(seed);
  DatabaseBuilder builder;
  std::vector<std::string> kws;
  const size_t users = 12 + rng.NextBelow(10);
  for (size_t u = 0; u < users; ++u) {
    const std::string key = "user" + std::to_string(u);
    const size_t objects = 1 + rng.NextBelow(6);
    for (size_t o = 0; o < objects; ++o) {
      Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
      if (rng.Bernoulli(0.3)) p = {0.25, 0.25};  // duplicate location
      kws.clear();
      const size_t tokens = rng.NextBelow(5);  // 0 => empty doc
      for (size_t t = 0; t < tokens; ++t) {
        kws.push_back("kw" + std::to_string(rng.NextBelow(12)));
      }
      if (!kws.empty() && rng.Bernoulli(0.5)) {
        kws.push_back(kws.front());  // duplicate token within the object
      }
      builder.AddObject(key, p, std::span<const std::string>(kws));
    }
  }
  // One user with only empty docs, one with heavy duplication.
  builder.AddObject("all_empty", {0.5, 0.5}, std::span<const std::string>());
  builder.AddObject("all_empty", {0.25, 0.25},
                    std::span<const std::string>());
  const std::vector<std::string> dup = {"kw1", "kw1", "kw1", "kw2"};
  builder.AddObject("dup_heavy", {0.25, 0.25},
                    std::span<const std::string>(dup));
  builder.AddObject("dup_heavy", {0.7, 0.7},
                    std::span<const std::string>(dup));
  return std::move(builder).Build();
}

bool ContainsPair(const std::vector<std::pair<UserId, UserId>>& pairs,
                  UserId a, UserId b) {
  return std::binary_search(pairs.begin(), pairs.end(),
                            std::make_pair(a, b));
}

// Every pair the exact join / top-k reports must appear in the candidate
// set generated at the query's eps_loc.
void CheckSoundness(const ObjectDatabase& db, const UserSketchIndex& index,
                    uint64_t seed) {
  const SketchOptions options;
  for (const double eps_loc : {0.03, 0.12, 0.4}) {
    const SketchCandidates cand =
        index.GenerateCandidates(eps_loc, options);
    // Structural sanity: sorted unique (a, b) pairs, a < b, priority is a
    // permutation.
    for (size_t i = 0; i < cand.pairs.size(); ++i) {
      EXPECT_LT(cand.pairs[i].first, cand.pairs[i].second);
      if (i > 0) {
        EXPECT_LT(cand.pairs[i - 1], cand.pairs[i]);
      }
    }
    std::vector<uint32_t> priority = cand.priority;
    std::sort(priority.begin(), priority.end());
    ASSERT_EQ(priority.size(), cand.pairs.size());
    for (size_t i = 0; i < priority.size(); ++i) {
      EXPECT_EQ(priority[i], i);
    }

    for (const double eps_doc : {0.25, 0.5, 1.0}) {
      for (const double eps_u : {0.05, 0.3, 0.6}) {
        const STPSQuery query{eps_loc, eps_doc, eps_u};
        for (const ScoredUserPair& pair : BruteForceSTPSJoin(db, query)) {
          EXPECT_TRUE(ContainsPair(cand.pairs, pair.a, pair.b))
              << "seed=" << seed << " dropped join pair (" << pair.a << ","
              << pair.b << ") eps_loc=" << eps_loc << " eps_doc=" << eps_doc
              << " eps_u=" << eps_u;
        }
      }
      const TopKQuery topk{eps_loc, eps_doc, 1000};
      for (const ScoredUserPair& pair : BruteForceTopK(db, topk)) {
        EXPECT_TRUE(ContainsPair(cand.pairs, pair.a, pair.b))
            << "seed=" << seed << " dropped top-k pair (" << pair.a << ","
            << pair.b << ") eps_loc=" << eps_loc << " eps_doc=" << eps_doc;
      }
    }
  }
}

class SketchSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SketchSoundnessTest, BandIndexNeverDropsAnExactPair) {
  const ObjectDatabase db = BuildFuzzDatabase(GetParam());
  CheckSoundness(db, db.sketches(), GetParam());
}

TEST_P(SketchSoundnessTest, SoundUnderCollisionHeavyParams) {
  // Tiny band count and grids force maximal aliasing: many tokens per
  // band, many points per cell. Soundness must not depend on resolution.
  const ObjectDatabase db = BuildFuzzDatabase(GetParam() + 777);
  SketchParams params;
  params.num_hashes = 8;
  params.num_bands = 4;
  params.index_grid_bits = 1;
  params.occupancy_grid_bits = 3;
  params.seed = GetParam();
  CheckSoundness(db, *BuildUserSketches(db, params), GetParam());
}

TEST_P(SketchSoundnessTest, HotspotDatabasesStaySound) {
  RandomDbSpec spec;
  spec.seed = GetParam();
  spec.num_users = 25;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  CheckSoundness(db, db.sketches(), GetParam());
}

TEST_P(SketchSoundnessTest, OccupancyRejectionIsASeparationProof) {
  const ObjectDatabase db = BuildFuzzDatabase(GetParam() + 31);
  const UserSketchIndex& index = db.sketches();
  for (const double eps_loc : {0.02, 0.1, 0.5}) {
    for (UserId u = 0; u < db.num_users(); ++u) {
      for (UserId v = u + 1; v < db.num_users(); ++v) {
        bool spatially_close = false;
        for (const STObject& a : db.UserObjects(u)) {
          for (const STObject& b : db.UserObjects(v)) {
            if (WithinDistance(a.loc, b.loc, eps_loc)) {
              spatially_close = true;
              break;
            }
          }
          if (spatially_close) break;
        }
        if (spatially_close) {
          EXPECT_TRUE(index.OccupancyClose(u, v, eps_loc))
              << "rejected a spatially close pair (" << u << "," << v
              << ") at eps_loc=" << eps_loc;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchSoundnessTest,
                         ::testing::Values(3, 17, 42, 91, 128));

TEST(SketchMinHashTest, EstimatesWithinChernoffBounds) {
  // 40 users with structured overlap (nested prefixes of a 60-token
  // vocabulary: exact Jaccards at many distinct rationals). With k = 64
  // rows, P(|est - J| >= 0.35) <= 2 exp(-2 * 64 * 0.35^2) ~ 3e-7 per
  // pair; at the fixed build seed the bound must hold for every pair,
  // and the mean absolute error must be well inside 1/sqrt(k).
  DatabaseBuilder builder;
  std::vector<std::string> kws;
  for (int u = 0; u < 40; ++u) {
    kws.clear();
    for (int t = 0; t <= u + u % 3; ++t) {
      kws.push_back("tok" + std::to_string(t));
    }
    builder.AddObject("user" + std::to_string(u),
                      {0.1 * (u % 7), 0.1 * (u / 7)},
                      std::span<const std::string>(kws));
  }
  const ObjectDatabase db = std::move(builder).Build();
  const UserSketchIndex& index = db.sketches();

  std::vector<std::set<TokenId>> unions(db.num_users());
  for (const STObject& o : db.AllObjects()) {
    unions[o.user].insert(o.doc.begin(), o.doc.end());
  }
  double total_error = 0.0;
  size_t pairs = 0;
  for (UserId u = 0; u < db.num_users(); ++u) {
    for (UserId v = u + 1; v < db.num_users(); ++v) {
      std::vector<TokenId> common;
      std::set_intersection(unions[u].begin(), unions[u].end(),
                            unions[v].begin(), unions[v].end(),
                            std::back_inserter(common));
      const size_t inter = common.size();
      const size_t uni = unions[u].size() + unions[v].size() - inter;
      const double truth =
          uni == 0 ? 0.0
                   : static_cast<double>(inter) / static_cast<double>(uni);
      const double estimate = index.EstimateUnionJaccard(u, v);
      const double error = std::fabs(estimate - truth);
      EXPECT_LE(error, 0.35) << "pair (" << u << "," << v << ") truth="
                             << truth << " estimate=" << estimate;
      total_error += error;
      ++pairs;
    }
  }
  EXPECT_LE(total_error / static_cast<double>(pairs), 0.08);
}

TEST(SketchMinHashTest, EmptyUnionEstimatesZero) {
  DatabaseBuilder builder;
  const std::vector<std::string> doc = {"a", "b"};
  builder.AddObject("empty1", {0, 0}, std::span<const std::string>());
  builder.AddObject("empty2", {1, 1}, std::span<const std::string>());
  builder.AddObject("full", {2, 2}, std::span<const std::string>(doc));
  const ObjectDatabase db = std::move(builder).Build();
  const UserSketchIndex& index = db.sketches();
  // Two empty unions: Jaccard 0 by convention, not the 1.0 their
  // identical all-sentinel signatures would suggest.
  EXPECT_EQ(index.EstimateUnionJaccard(0, 1), 0.0);
  EXPECT_EQ(index.EstimateUnionJaccard(0, 2), 0.0);
  EXPECT_EQ(index.EstimateUnionJaccard(2, 2), 1.0);
}

TEST(CountMinTest, NeverUnderCounts) {
  Rng rng(2024);
  // Width 256 with 4000 adds over 700 keys: heavy collision pressure, so
  // estimates genuinely exceed truth — the test is that they never dip
  // below it.
  CountMinSketch cms(/*log2_width=*/8, /*depth=*/4, /*seed=*/7);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (int i = 0; i < 4000; ++i) {
    const uint64_t key = rng.NextBelow(700);
    const uint64_t count = 1 + rng.NextBelow(9);
    truth[key] += count;
    cms.Add(key, count);
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(cms.Estimate(key), count) << "key=" << key;
  }
  // Keys never added can only report collision mass, never underflow.
  EXPECT_GE(cms.Estimate(999999), 0u);
}

TEST(CountMinTest, ExactWithoutCollisions) {
  // 8 keys in a 2^16-wide sketch: collisions are (deterministically, at
  // this seed) absent and the estimate is exact.
  CountMinSketch cms(/*log2_width=*/16, /*depth=*/4, /*seed=*/11);
  for (uint64_t key = 0; key < 8; ++key) cms.Add(key, key + 1);
  for (uint64_t key = 0; key < 8; ++key) {
    EXPECT_EQ(cms.Estimate(key), key + 1);
  }
}

TEST(SketchCandidateTest, HeavyCapacityBoundsThePriorityHead) {
  RandomDbSpec spec;
  spec.seed = 5;
  spec.num_users = 30;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  SketchOptions few;
  few.heavy_capacity = 3;
  const SketchCandidates cand =
      db.sketches().GenerateCandidates(0.1, few);
  if (cand.pairs.size() <= few.heavy_capacity) return;
  // Beyond the heavy head the order must be the natural (a, b) order.
  for (size_t i = few.heavy_capacity + 1; i < cand.priority.size(); ++i) {
    EXPECT_LT(cand.priority[i - 1], cand.priority[i]);
  }
}

}  // namespace
}  // namespace stps
