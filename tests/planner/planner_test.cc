// Planner test suite: differential correctness of kAuto against the
// brute-force oracle (any thread budget, sketch on or off — the planner
// may only ever be wrong about speed), the guaranteed properties of the
// selectivity estimator (finite, non-negative, monotone in each
// threshold), the online-feedback EWMA (convergence, candidate-ratio
// learning, plan-switch detection), precondition-respecting plan
// enumeration, Explain output, and thread-safety of the shared feedback
// map (this test runs under TSan in scripts/check_all.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/stpsjoin.h"
#include "datagen/dataset_stats.h"
#include "planner/cost_model.h"
#include "planner/feedback.h"
#include "planner/planner.h"
#include "planner/planner_stats.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;
using testing_util::SameResults;

// Fuzzed database family: uniform-ish, hotspot-heavy, and collision-heavy
// (tiny vocabulary, stacked locations) instances.
ObjectDatabase FuzzDb(uint64_t seed, int family) {
  RandomDbSpec spec;
  spec.seed = seed;
  switch (family % 3) {
    case 0:  // mostly uniform
      spec.num_users = 25;
      spec.hotspot_probability = 0.2;
      spec.vocabulary = 40;
      break;
    case 1:  // hotspot-heavy
      spec.num_users = 30;
      spec.num_hotspots = 3;
      spec.hotspot_sigma = 0.01;
      spec.hotspot_probability = 0.95;
      break;
    default:  // collision-heavy: tiny vocabulary, near-stacked points
      spec.num_users = 20;
      spec.vocabulary = 6;
      spec.num_hotspots = 2;
      spec.hotspot_sigma = 0.002;
      spec.hotspot_probability = 0.9;
      break;
  }
  return BuildRandomDatabase(spec);
}

class PlannerDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override { PlannerFeedback::Global().Reset(); }
};

TEST_P(PlannerDifferentialTest, AutoJoinMatchesBruteForce) {
  Rng rng(GetParam());
  for (int family = 0; family < 3; ++family) {
    const ObjectDatabase db = FuzzDb(rng.Next(), family);
    for (int round = 0; round < 3; ++round) {
      STPSQuery query;
      query.eps_loc = rng.Uniform(0.01, 0.3);
      query.eps_doc = rng.Uniform(0.1, 0.9);
      query.eps_u = rng.Uniform(0.05, 0.8);
      const auto expected = BruteForceSTPSJoin(db, query);
      for (const bool sketch : {false, true}) {
        query.sketch.enabled = sketch;
        for (const int threads : {1, 2, 8}) {
          query.parallel = ParallelOptions{threads, 0};
          JoinOptions options;
          options.algorithm = JoinAlgorithm::kAuto;
          JoinStats stats;
          const auto got = RunSTPSJoin(db, query, options, &stats);
          ASSERT_TRUE(SameResults(got, expected, /*tolerance=*/0.0))
              << "family=" << family << " threads=" << threads
              << " sketch=" << sketch << " eps_loc=" << query.eps_loc
              << " eps_doc=" << query.eps_doc << " eps_u=" << query.eps_u;
          // The chosen plan's counters still satisfy the accounting
          // invariant, whatever shape ran.
          EXPECT_EQ(stats.pairs_candidate,
                    stats.pairs_pruned_count + stats.pairs_verified);
          EXPECT_EQ(stats.matches_found, expected.size());
        }
      }
      query.sketch = SketchOptions{};
      query.parallel = ParallelOptions{};
    }
  }
}

TEST_P(PlannerDifferentialTest, AutoTopKMatchesBruteForce) {
  Rng rng(GetParam() + 777);
  for (int family = 0; family < 3; ++family) {
    const ObjectDatabase db = FuzzDb(rng.Next(), family);
    TopKQuery query;
    query.eps_loc = rng.Uniform(0.01, 0.3);
    query.eps_doc = rng.Uniform(0.1, 0.9);
    query.k = 1 + rng.NextBelow(20);
    const auto expected = BruteForceTopK(db, query);
    for (const bool sketch : {false, true}) {
      query.sketch.enabled = sketch;
      for (const int threads : {1, 2, 8}) {
        query.parallel = ParallelOptions{threads, 0};
        const auto got =
            RunTopKSTPSJoin(db, query, TopKAlgorithm::kAuto);
        ASSERT_TRUE(SameResults(got, expected, /*tolerance=*/0.0))
            << "family=" << family << " threads=" << threads
            << " sketch=" << sketch << " k=" << query.k;
      }
    }
  }
}

// Even with the feedback map poisoned to prefer each shape in turn, kAuto
// stays exact — the planner can choose badly, never wrongly.
TEST(PlannerSteeringTest, PoisonedFeedbackNeverChangesResults) {
  const ObjectDatabase db = FuzzDb(42, 1);
  STPSQuery query{0.08, 0.3, 0.2};
  const auto expected = BruteForceSTPSJoin(db, query);
  const PlanEstimate estimate = EstimateJoinStages(
      db.planner_stats(), query.eps_loc, query.eps_doc, query.eps_u);
  JoinStats fake;
  fake.pairs_candidate = 123;
  for (const JoinAlgorithm fast :
       {JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB, JoinAlgorithm::kSPPJF,
        JoinAlgorithm::kSPPJD, JoinAlgorithm::kBruteForce}) {
    PlannerFeedback::Global().Reset();
    // Make `fast` look instantaneous and everything else glacial.
    for (const JoinAlgorithm algorithm :
         {JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB, JoinAlgorithm::kSPPJF,
          JoinAlgorithm::kSPPJD, JoinAlgorithm::kBruteForce}) {
      PlanShape shape;
      shape.join = algorithm;
      const double cost =
          EstimateShapeCost(db.planner_stats(), shape, estimate);
      for (int i = 0; i < 8; ++i) {
        PlannerFeedback::Global().Record(shape, estimate, cost, fake,
                                         algorithm == fast ? 1e-3 : 1e5);
      }
    }
    const PhysicalPlan plan = PlanSTPSJoin(db, query);
    JoinOptions options;
    options.algorithm = JoinAlgorithm::kAuto;
    ASSERT_TRUE(SameResults(RunSTPSJoin(db, query, options), expected,
                            /*tolerance=*/0.0))
        << "steered toward " << JoinAlgorithmName(fast)
        << ", planner chose " << PlanShapeName(plan.shape);
  }
  PlannerFeedback::Global().Reset();
}

// ---------------------------------------------------------------------------
// Selectivity estimator properties.

TEST(EstimatorPropertyTest, FiniteNonNegativeEverywhere) {
  Rng rng(7);
  for (int family = 0; family < 3; ++family) {
    const ObjectDatabase db = FuzzDb(rng.Next(), family);
    const PlannerStats& stats = db.planner_stats();
    for (const double eps_loc : {0.0, 1e-9, 0.01, 0.1, 0.5, 1.0, 10.0}) {
      for (const double eps_doc : {0.0, 0.1, 0.5, 1.0}) {
        for (const double eps_u : {0.0, 0.3, 1.0}) {
          const PlanEstimate est =
              EstimateJoinStages(stats, eps_loc, eps_doc, eps_u);
          for (const double v :
               {est.cells_visited, est.colocated_object_pairs,
                est.candidate_pairs, est.text_survivors, est.verified_pairs,
                est.verify_cost_per_pair}) {
            EXPECT_TRUE(std::isfinite(v));
            EXPECT_GE(v, 0.0);
          }
          // The funnel only narrows.
          EXPECT_LE(est.text_survivors, est.candidate_pairs + 1e-9);
          EXPECT_LE(est.verified_pairs, est.text_survivors + 1e-9);
          // Cost of every shape is finite and non-negative too.
          for (const JoinAlgorithm algorithm :
               {JoinAlgorithm::kBruteForce, JoinAlgorithm::kSPPJC,
                JoinAlgorithm::kSPPJB, JoinAlgorithm::kSPPJF,
                JoinAlgorithm::kSPPJD}) {
            for (const int threads : {1, 4}) {
              PlanShape shape;
              shape.join = algorithm;
              shape.threads = threads;
              const double cost = EstimateShapeCost(stats, shape, est);
              EXPECT_TRUE(std::isfinite(cost));
              EXPECT_GE(cost, 0.0);
            }
          }
        }
      }
    }
  }
}

TEST(EstimatorPropertyTest, MonotoneInEachThreshold) {
  Rng rng(11);
  for (int family = 0; family < 3; ++family) {
    const ObjectDatabase db = FuzzDb(rng.Next(), family);
    const PlannerStats& stats = db.planner_stats();
    const std::vector<double> locs = {0.001, 0.005, 0.02,
                                      0.08,  0.3,   1.2};
    // Nondecreasing in eps_loc (a wider radius can only add candidates).
    for (size_t i = 0; i + 1 < locs.size(); ++i) {
      const PlanEstimate lo = EstimateJoinStages(stats, locs[i], 0.3, 0.2);
      const PlanEstimate hi =
          EstimateJoinStages(stats, locs[i + 1], 0.3, 0.2);
      EXPECT_LE(lo.candidate_pairs, hi.candidate_pairs + 1e-9)
          << "family=" << family << " eps_loc " << locs[i] << " -> "
          << locs[i + 1];
      EXPECT_LE(lo.verified_pairs, hi.verified_pairs + 1e-9);
    }
    // Nonincreasing in eps_doc and eps_u (tighter filters kill pairs).
    const std::vector<double> fracs = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
    for (size_t i = 0; i + 1 < fracs.size(); ++i) {
      const PlanEstimate lo =
          EstimateJoinStages(stats, 0.05, fracs[i], 0.2);
      const PlanEstimate hi =
          EstimateJoinStages(stats, 0.05, fracs[i + 1], 0.2);
      EXPECT_GE(lo.text_survivors, hi.text_survivors - 1e-9);
      EXPECT_GE(lo.verified_pairs, hi.verified_pairs - 1e-9);
      const PlanEstimate lo_u =
          EstimateJoinStages(stats, 0.05, 0.3, fracs[i]);
      const PlanEstimate hi_u =
          EstimateJoinStages(stats, 0.05, 0.3, fracs[i + 1]);
      EXPECT_GE(lo_u.verified_pairs, hi_u.verified_pairs - 1e-9);
    }
  }
}

TEST(PlannerStatsTest, OccupancyLadderIsMonotone) {
  const ObjectDatabase db = FuzzDb(5, 1);
  const PlannerStats& stats = db.planner_stats();
  const uint64_t n = stats.dataset.num_objects;
  // Level 0 is one cell holding everything.
  EXPECT_EQ(stats.occupancy[0].occupied_cells, 1u);
  EXPECT_EQ(stats.occupancy[0].sum_sq_counts, n * n);
  EXPECT_EQ(stats.occupancy[0].max_cell_count, n);
  for (int level = 1; level < PlannerStats::kLevels; ++level) {
    // Refining can only split cells: more occupied cells, smaller sum of
    // squares, smaller densest cell.
    EXPECT_GE(stats.occupancy[level].occupied_cells,
              stats.occupancy[level - 1].occupied_cells);
    EXPECT_LE(stats.occupancy[level].sum_sq_counts,
              stats.occupancy[level - 1].sum_sq_counts);
    EXPECT_LE(stats.occupancy[level].max_cell_count,
              stats.occupancy[level - 1].max_cell_count);
    // Per-level accounting: cells cannot outnumber objects, and the sum
    // of squares is at least n (all singletons).
    EXPECT_LE(stats.occupancy[level].occupied_cells, n);
    EXPECT_GE(stats.occupancy[level].sum_sq_counts, n);
  }
}

TEST(PlannerStatsTest, DatasetStatsAreCachedAtBuild) {
  const ObjectDatabase db = FuzzDb(3, 0);
  ASSERT_TRUE(db.has_planner_stats());
  // The cached copy is byte-identical with a fresh scan, and
  // ComputeDatasetStats returns it.
  EXPECT_EQ(ComputeDatasetStats(db), ComputeDatasetStatsUncached(db));
  EXPECT_EQ(ComputeDatasetStats(db), db.planner_stats().dataset);
  EXPECT_EQ(db.planner_stats().dataset.num_objects, db.num_objects());
  EXPECT_EQ(db.planner_stats().dataset.num_users, db.num_users());
}

// ---------------------------------------------------------------------------
// Online feedback.

TEST(FeedbackTest, PredictionConvergesToObservedRate) {
  PlannerFeedback feedback;
  PlanShape shape;
  shape.join = JoinAlgorithm::kSPPJF;
  PlanEstimate estimate;
  estimate.candidate_pairs = 100.0;
  JoinStats stats;
  stats.pairs_candidate = 100;
  const double units = 1e6;
  const double true_ms = 5.0;  // 5e-6 ms/unit
  for (int i = 0; i < 40; ++i) {
    feedback.Record(shape, estimate, units, stats, true_ms);
  }
  const double predicted = feedback.PredictMillis(shape, units);
  EXPECT_NEAR(predicted, true_ms, 0.05 * true_ms);
  // An unobserved shape still predicts from the calibration default.
  PlanShape other;
  other.join = JoinAlgorithm::kSPPJC;
  EXPECT_GT(feedback.PredictMillis(other, units), 0.0);
}

TEST(FeedbackTest, CandidateCorrectionTracksMeasuredRatio) {
  PlannerFeedback feedback;
  PlanShape shape;
  shape.join = JoinAlgorithm::kSPPJB;
  PlanEstimate estimate;
  estimate.candidate_pairs = 100.0;
  JoinStats stats;
  stats.pairs_candidate = 400;  // model under-estimates 4x
  for (int i = 0; i < 40; ++i) {
    feedback.Record(shape, estimate, 1e5, stats, 1.0);
  }
  EXPECT_NEAR(feedback.CandidateCorrection(shape), 4.0, 0.2);
  // The correction feeds back into the cost: a corrected candidate-driven
  // shape gets more expensive.
  const ObjectDatabase db = FuzzDb(8, 2);
  const PlanEstimate est = EstimateJoinStages(db.planner_stats(), 0.05,
                                              0.3, 0.2);
  EXPECT_GT(EstimateShapeCost(db.planner_stats(), shape, est, 4.0),
            EstimateShapeCost(db.planner_stats(), shape, est, 1.0));
}

TEST(FeedbackTest, NoteChosenPlanDetectsSwitches) {
  PlannerFeedback feedback;
  PlanShape a;
  a.join = JoinAlgorithm::kSPPJF;
  PlanShape b;
  b.join = JoinAlgorithm::kSPPJC;
  EXPECT_FALSE(feedback.NoteChosenPlan(1, a));  // first sighting
  EXPECT_FALSE(feedback.NoteChosenPlan(1, a));  // stable
  EXPECT_TRUE(feedback.NoteChosenPlan(1, b));   // switch
  EXPECT_FALSE(feedback.NoteChosenPlan(1, b));
  EXPECT_FALSE(feedback.NoteChosenPlan(2, a));  // other query, first
  feedback.Reset();
  EXPECT_FALSE(feedback.NoteChosenPlan(1, b));  // forgotten
}

TEST(FeedbackTest, RejectsDegenerateObservations) {
  PlannerFeedback feedback;
  PlanShape shape;
  PlanEstimate estimate;
  JoinStats stats;
  feedback.Record(shape, estimate, 1e5, stats,
                  std::numeric_limits<double>::quiet_NaN());
  feedback.Record(shape, estimate, 1e5, stats, -1.0);
  feedback.Record(shape, estimate,
                  std::numeric_limits<double>::infinity(), stats, 1.0);
  EXPECT_EQ(feedback.total_records(), 0u);
}

// A converging workload: after the warm-up run, repeating the same query
// must stop switching plans.
TEST(FeedbackTest, RepeatedAutoRunsStopSwitching) {
  PlannerFeedback::Global().Reset();
  const ObjectDatabase db = FuzzDb(21, 1);
  STPSQuery query{0.06, 0.4, 0.25};
  JoinOptions options;
  options.algorithm = JoinAlgorithm::kAuto;
  uint64_t switches_after_first = 0;
  for (int run = 0; run < 6; ++run) {
    JoinStats stats;
    RunSTPSJoin(db, query, options, &stats);
    if (run >= 2) switches_after_first += stats.planner_plan_switches;
    EXPECT_GT(stats.planner_estimated_candidates, 0u);
  }
  // The EWMA sees consistent timings for the winning shape, so at most
  // the first re-plan may move; afterwards the choice must be stable.
  EXPECT_LE(switches_after_first, 1u);
  PlannerFeedback::Global().Reset();
}

// ---------------------------------------------------------------------------
// Plan enumeration respects algorithm preconditions.

TEST(PlannerPreconditionTest, InfeasibleShapesNeverEnumerated) {
  const ObjectDatabase db = FuzzDb(13, 0);
  // eps_doc = 0: the filter-based pair (F, D) and sketches are unsound.
  {
    STPSQuery query{0.1, 0.0, 0.3};
    const PhysicalPlan plan = PlanSTPSJoin(db, query);
    for (const PlanCandidate& c : plan.considered) {
      EXPECT_NE(c.shape.join, JoinAlgorithm::kSPPJF);
      EXPECT_NE(c.shape.join, JoinAlgorithm::kSPPJD);
      EXPECT_FALSE(c.shape.sketch);
    }
    JoinOptions options;
    options.algorithm = JoinAlgorithm::kAuto;
    EXPECT_TRUE(SameResults(RunSTPSJoin(db, query, options),
                            BruteForceSTPSJoin(db, query)));
  }
  // eps_loc = 0: no grid; only brute force is feasible.
  {
    STPSQuery query{0.0, 0.5, 0.3};
    const PhysicalPlan plan = PlanSTPSJoin(db, query);
    for (const PlanCandidate& c : plan.considered) {
      if (!c.shape.sketch) {
        EXPECT_EQ(c.shape.join, JoinAlgorithm::kBruteForce);
      }
    }
    JoinOptions options;
    options.algorithm = JoinAlgorithm::kAuto;
    EXPECT_TRUE(SameResults(RunSTPSJoin(db, query, options),
                            BruteForceSTPSJoin(db, query)));
  }
  // Thread budget is a ceiling: no enumerated shape exceeds it.
  {
    STPSQuery query{0.1, 0.4, 0.3};
    query.parallel.num_threads = 3;
    const PhysicalPlan plan = PlanSTPSJoin(db, query);
    for (const PlanCandidate& c : plan.considered) {
      EXPECT_GE(c.shape.threads, 1);
      EXPECT_LE(c.shape.threads, 3);
    }
  }
  // Empty database: the fallback plan is brute force and still runs.
  {
    DatabaseBuilder builder;
    const ObjectDatabase empty = std::move(builder).Build();
    STPSQuery query{0.1, 0.4, 0.3};
    const PhysicalPlan plan = PlanSTPSJoin(empty, query);
    EXPECT_EQ(plan.shape.join, JoinAlgorithm::kBruteForce);
    JoinOptions options;
    options.algorithm = JoinAlgorithm::kAuto;
    EXPECT_TRUE(RunSTPSJoin(empty, query, options).empty());
  }
  // Top-k with eps_doc = 0: index variants and sketches are out.
  {
    TopKQuery query{0.1, 0.0, 5};
    const PhysicalPlan plan = PlanTopKSTPSJoin(db, query);
    EXPECT_EQ(plan.shape.topk_algorithm, TopKAlgorithm::kBruteForce);
    EXPECT_TRUE(SameResults(
        RunTopKSTPSJoin(db, query, TopKAlgorithm::kAuto),
        BruteForceTopK(db, query)));
  }
}

TEST(PlannerExplainTest, RendersPlanAndCounterTable) {
  PlannerFeedback::Global().Reset();
  const ObjectDatabase db = FuzzDb(17, 1);
  STPSQuery query{0.08, 0.3, 0.2};
  const PhysicalPlan plan = PlanSTPSJoin(db, query);
  EXPECT_FALSE(plan.considered.empty());
  EXPECT_GT(plan.cost_units, 0.0);
  EXPECT_GT(plan.predicted_ms, 0.0);
  // The candidate table is sorted cheapest-first and the chosen shape is
  // its head.
  for (size_t i = 0; i + 1 < plan.considered.size(); ++i) {
    EXPECT_LE(plan.considered[i].predicted_ms,
              plan.considered[i + 1].predicted_ms);
  }
  EXPECT_TRUE(plan.shape == plan.considered.front().shape);

  const std::string without = ExplainPlan(plan);
  EXPECT_NE(without.find("plan:"), std::string::npos);
  EXPECT_NE(without.find(PlanShapeName(plan.shape)), std::string::npos);
  EXPECT_NE(without.find("[chosen]"), std::string::npos);
  EXPECT_EQ(without.find("estimated vs actual"), std::string::npos);

  JoinOptions options;
  options.algorithm = JoinAlgorithm::kAuto;
  JoinStats stats;
  RunSTPSJoin(db, query, options, &stats);
  const std::string with = ExplainPlan(plan, &stats);
  EXPECT_NE(with.find("estimated vs actual"), std::string::npos);
  EXPECT_NE(with.find("candidate_pairs"), std::string::npos);
  EXPECT_NE(with.find("matches_found"), std::string::npos);
  PlannerFeedback::Global().Reset();
}

// ---------------------------------------------------------------------------
// Thread-safety: the feedback map is the only shared mutable state in the
// planner stack. Hammer it from concurrent kAuto joins, explicit joins,
// and direct feedback calls; run under TSan via scripts/check_all.sh.

TEST(PlannerConcurrencyTest, SharedFeedbackSurvivesParallelUse) {
  PlannerFeedback::Global().Reset();
  const ObjectDatabase db = FuzzDb(29, 2);
  STPSQuery query{0.05, 0.3, 0.2};
  const auto expected = BruteForceSTPSJoin(db, query);
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < 8; ++i) {
        JoinOptions options;
        options.algorithm =
            (w % 2 == 0) ? JoinAlgorithm::kAuto : JoinAlgorithm::kSPPJF;
        JoinStats stats;
        const auto got = RunSTPSJoin(db, query, options, &stats);
        if (!SameResults(got, expected, /*tolerance=*/0.0)) {
          failed = true;
        }
      }
    });
  }
  // Two more threads poking the feedback API directly.
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&] {
      PlanShape shape;
      shape.join = JoinAlgorithm::kSPPJC;
      PlanEstimate estimate;
      estimate.candidate_pairs = 10.0;
      JoinStats stats;
      stats.pairs_candidate = 12;
      for (int i = 0; i < 64; ++i) {
        PlannerFeedback::Global().Record(shape, estimate, 1e4, stats, 0.5);
        PlannerFeedback::Global().PredictMillis(shape, 1e4);
        PlannerFeedback::Global().CandidateCorrection(shape);
        PlannerFeedback::Global().NoteChosenPlan(99, shape);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(PlannerFeedback::Global().total_records(), 0u);
  PlannerFeedback::Global().Reset();
}

// Regression: a zero (or non-finite) candidate estimate must not enter
// the actual/estimated EWMA. Before the guard, Record() divided by
// max(1.0, 0.0) and pushed a fabricated ratio of up to 64x into the
// learned correction, poisoning every later query of the same shape.
TEST(PlannerFeedbackTest, ZeroEstimateDoesNotPoisonCandidateRatio) {
  PlannerFeedback::Global().Reset();
  PlanShape shape;
  shape.join = JoinAlgorithm::kSPPJB;
  JoinStats stats;
  stats.pairs_candidate = 5000;  // huge "actual" against a zero estimate

  PlanEstimate zero;
  zero.candidate_pairs = 0.0;
  PlannerFeedback::Global().Record(shape, zero, 1e4, stats, 0.5);
  EXPECT_DOUBLE_EQ(PlannerFeedback::Global().CandidateCorrection(shape), 1.0);

  PlanEstimate bogus;
  bogus.candidate_pairs = std::nan("");
  PlannerFeedback::Global().Record(shape, bogus, 1e4, stats, 0.5);
  EXPECT_DOUBLE_EQ(PlannerFeedback::Global().CandidateCorrection(shape), 1.0);

  // Timing feedback from those runs still lands, and predictions stay
  // finite and non-negative.
  EXPECT_GT(PlannerFeedback::Global().total_records(), 0u);
  const double predicted = PlannerFeedback::Global().PredictMillis(shape, 1e4);
  EXPECT_TRUE(std::isfinite(predicted));
  EXPECT_GE(predicted, 0.0);

  // A later real estimate learns the ratio normally.
  PlanEstimate real;
  real.candidate_pairs = 1000.0;
  PlannerFeedback::Global().Record(shape, real, 1e4, stats, 0.5);
  EXPECT_GT(PlannerFeedback::Global().CandidateCorrection(shape), 1.0);
  PlannerFeedback::Global().Reset();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerDifferentialTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace stps
