#include "text/intersect.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/similarity.h"
#include "text/token_set.h"

namespace stps {
namespace {

using TV = TokenVector;

TV RandomSet(Rng& rng, size_t max_len, size_t vocabulary) {
  TV v;
  const size_t n = rng.NextBelow(max_len + 1);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<TokenId>(rng.NextBelow(vocabulary)));
  }
  NormalizeTokenSet(&v);
  return v;
}

size_t BruteOverlap(const TV& a, const TV& b) {
  size_t overlap = 0;
  for (const TokenId t : a) {
    for (const TokenId u : b) overlap += (t == u);
  }
  return overlap;
}

TEST(IntersectTest, MergeKernelBasics) {
  EXPECT_EQ(IntersectCountMerge(TV{1, 2, 3}, TV{2, 3, 4}), 2u);
  EXPECT_EQ(IntersectCountMerge(TV{}, TV{1, 2}), 0u);
  EXPECT_EQ(IntersectCountMerge(TV{1}, TV{}), 0u);
  EXPECT_EQ(IntersectCountMerge(TV{}, TV{}), 0u);
  EXPECT_EQ(IntersectCountMerge(TV{5}, TV{5}), 1u);
  EXPECT_EQ(IntersectCountMerge(TV{5}, TV{6}), 0u);
}

TEST(IntersectTest, GallopKernelBasics) {
  EXPECT_EQ(IntersectCountGallop(TV{1, 2, 3}, TV{2, 3, 4}), 2u);
  EXPECT_EQ(IntersectCountGallop(TV{}, TV{1, 2}), 0u);
  EXPECT_EQ(IntersectCountGallop(TV{5}, TV{5}), 1u);
  // Skewed sizes: one probe into a long run.
  TV large;
  for (TokenId t = 0; t < 1000; ++t) large.push_back(t);
  EXPECT_EQ(IntersectCountGallop(TV{999}, large), 1u);
  EXPECT_EQ(IntersectCountGallop(TV{1000}, large), 0u);
  EXPECT_EQ(IntersectCountGallop(large, TV{0, 500, 1500}), 2u);
}

TEST(IntersectTest, KernelsAgreeOnRandomSets) {
  Rng rng(42);
  for (int trial = 0; trial < 3000; ++trial) {
    const TV a = RandomSet(rng, 40, 60);
    const TV b = RandomSet(rng, 40, 60);
    const size_t expected = BruteOverlap(a, b);
    EXPECT_EQ(IntersectCountMerge(a, b), expected);
    EXPECT_EQ(IntersectCountGallop(a, b), expected);
    EXPECT_EQ(IntersectCount(a, b), expected);
    // With required <= expected the early-abandoning count is exact.
    EXPECT_EQ(IntersectCountAtLeast(a, b, expected), expected);
    EXPECT_EQ(IntersectCountAtLeast(a, b, 0), expected);
  }
}

TEST(IntersectTest, KernelsAgreeOnSkewedSizes) {
  Rng rng(43);
  for (int trial = 0; trial < 500; ++trial) {
    const TV small = RandomSet(rng, 4, 3000);
    const TV large = RandomSet(rng, 600, 3000);
    const size_t expected = BruteOverlap(small, large);
    EXPECT_EQ(IntersectCountMerge(small, large), expected);
    EXPECT_EQ(IntersectCountGallop(small, large), expected);
    EXPECT_EQ(IntersectCount(small, large), expected);
    EXPECT_EQ(IntersectCount(large, small), expected);
  }
}

TEST(IntersectTest, AtLeastAbandonsBelowRequirement) {
  // When the requirement is unreachable the kernel may stop early; the
  // only contract is that the result stays below the requirement.
  Rng rng(44);
  for (int trial = 0; trial < 2000; ++trial) {
    const TV a = RandomSet(rng, 20, 30);
    const TV b = RandomSet(rng, 20, 30);
    const size_t expected = BruteOverlap(a, b);
    const size_t required = expected + 1 + rng.NextBelow(5);
    EXPECT_LT(IntersectCountAtLeast(a, b, required), required);
  }
}

TEST(SignatureTest, EmptySetHasZeroSignature) {
  EXPECT_EQ(ComputeSignature(TV{}), 0u);
  EXPECT_NE(ComputeSignature(TV{0}), 0u);
}

TEST(SignatureTest, SignatureIsUnionOfTokenBits) {
  const TV set = {3, 17, 101, 9999};
  TokenSignature expected = 0;
  for (const TokenId t : set) {
    expected |= TokenSignature{1} << SignatureBit(t);
  }
  EXPECT_EQ(ComputeSignature(set), expected);
}

TEST(SignatureTest, UpperBoundIsSoundOnRandomSets) {
  // The signature bound must never under-estimate the true overlap —
  // otherwise the gate could reject a real match.
  Rng rng(45);
  for (int trial = 0; trial < 5000; ++trial) {
    // Small vocabularies force in-set hash collisions, the regime where a
    // naive popcount(sa & sb) bound would be unsound.
    const size_t vocab = 5 + rng.NextBelow(300);
    const TV a = RandomSet(rng, 30, vocab);
    const TV b = RandomSet(rng, 30, vocab);
    const size_t overlap = BruteOverlap(a, b);
    const size_t bound = SignatureOverlapUpperBound(
        ComputeSignature(a), a.size(), ComputeSignature(b), b.size());
    EXPECT_GE(bound, overlap) << "a.size=" << a.size()
                              << " b.size=" << b.size();
  }
}

TEST(SignatureTest, DisjointBitSetsProveEmptyOverlap) {
  // Construct two sets with non-intersecting signature bits.
  TV a, b;
  for (TokenId t = 0; t < 200 && (a.empty() || b.empty()); ++t) {
    if (SignatureBit(t) == SignatureBit(0)) {
      a.push_back(t);
    } else {
      b.push_back(t);
    }
  }
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  NormalizeTokenSet(&a);
  NormalizeTokenSet(&b);
  EXPECT_EQ(SignatureOverlapUpperBound(ComputeSignature(a), a.size(),
                                       ComputeSignature(b), b.size()),
            0u);
}

TEST(JaccardKernelTest, MatchesDirectComputationOnEdgeCases) {
  EXPECT_TRUE(JaccardAtLeastKernel(TV{}, TV{}, 0.0));   // t <= 0 vacuous
  EXPECT_FALSE(JaccardAtLeastKernel(TV{}, TV{}, 0.5));  // empty => 0
  EXPECT_FALSE(JaccardAtLeastKernel(TV{1}, TV{}, 0.5));
  EXPECT_TRUE(JaccardAtLeastKernel(TV{7}, TV{7}, 1.0));  // single, equal
  EXPECT_FALSE(JaccardAtLeastKernel(TV{7}, TV{8}, 1.0));
  EXPECT_FALSE(JaccardAtLeastKernel(TV{1, 2}, TV{1}, 1.0));  // subset
}

// The central conservativeness property: the gated predicate must agree
// with the exact kernel on every pair — the signature may only speed up
// rejection, never change a decision.
TEST(SignatureGateTest, GateNeverRejectsAnExactMatch) {
  Rng rng(46);
  const double thresholds[] = {0.1, 0.25, 1.0 / 3, 0.5, 2.0 / 3, 0.8, 1.0};
  for (const double threshold : thresholds) {
    for (int trial = 0; trial < 3000; ++trial) {
      const size_t vocab = 5 + rng.NextBelow(200);
      const TV a = RandomSet(rng, 25, vocab);
      const TV b = RandomSet(rng, 25, vocab);
      const TokenSignature sa = ComputeSignature(a);
      const TokenSignature sb = ComputeSignature(b);
      const bool exact = JaccardAtLeastKernel(a, b, threshold);
      uint64_t rejections = 0;
      const bool gated =
          SignatureGatedJaccardAtLeast(a, sa, b, sb, threshold, &rejections);
      ASSERT_EQ(gated, exact)
          << "threshold=" << threshold << " |a|=" << a.size()
          << " |b|=" << b.size();
      // A counted rejection must coincide with a negative decision.
      if (rejections > 0) EXPECT_FALSE(gated);
    }
  }
}

TEST(SignatureGateTest, CountsRejections) {
  // Sets with disjoint bits and a high threshold: the gate must fire.
  TV a = {0};
  TV b;
  for (TokenId t = 1; t < 200; ++t) {
    if (SignatureBit(t) != SignatureBit(0)) {
      b.push_back(t);
      break;
    }
  }
  ASSERT_FALSE(b.empty());
  uint64_t rejections = 0;
  EXPECT_FALSE(SignatureGatedJaccardAtLeast(a, ComputeSignature(a), b,
                                            ComputeSignature(b), 0.5,
                                            &rejections));
  EXPECT_EQ(rejections, 1u);
}

}  // namespace
}  // namespace stps
