#include "text/token_set.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stps {
namespace {

TEST(TokenSetTest, NormalizeSortsAndDeduplicates) {
  TokenVector v = {5, 1, 3, 1, 5, 2};
  NormalizeTokenSet(&v);
  EXPECT_EQ(v, (TokenVector{1, 2, 3, 5}));
  EXPECT_TRUE(IsNormalizedTokenSet(v));
}

TEST(TokenSetTest, IsNormalizedRejectsDuplicatesAndDisorder) {
  EXPECT_TRUE(IsNormalizedTokenSet({}));
  EXPECT_TRUE(IsNormalizedTokenSet({7}));
  EXPECT_FALSE(IsNormalizedTokenSet({1, 1}));
  EXPECT_FALSE(IsNormalizedTokenSet({2, 1}));
}

TEST(TokenSetTest, OverlapSizeBasics) {
  EXPECT_EQ(OverlapSize({1, 2, 3}, {2, 3, 4}), 2u);
  EXPECT_EQ(OverlapSize({1, 2, 3}, {4, 5}), 0u);
  EXPECT_EQ(OverlapSize({}, {1}), 0u);
  EXPECT_EQ(OverlapSize({1, 2}, {1, 2}), 2u);
}

TEST(TokenSetTest, OverlapSizeAtLeastIsExactWhenReachable) {
  const TokenVector a = {1, 2, 3, 4, 5};
  const TokenVector b = {2, 4, 6, 8};
  EXPECT_EQ(OverlapSizeAtLeast(a, b, 0), 2u);
  EXPECT_EQ(OverlapSizeAtLeast(a, b, 2), 2u);
}

TEST(TokenSetTest, OverlapSizeAtLeastAbandonsEarly) {
  const TokenVector a = {1, 2, 3};
  const TokenVector b = {10, 11, 12};
  // Requirement 4 can never be met with 3-element sets; result < 4.
  EXPECT_LT(OverlapSizeAtLeast(a, b, 4), 4u);
}

TEST(TokenSetTest, JaccardKnownValues) {
  EXPECT_DOUBLE_EQ(Jaccard({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Jaccard({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(Jaccard({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(Jaccard({}, {}), 0.0);  // no evidence convention
  EXPECT_DOUBLE_EQ(Jaccard({1}, {}), 0.0);
}

TEST(TokenSetTest, JaccardAtLeastAgreesWithJaccardOnThreshold) {
  EXPECT_TRUE(JaccardAtLeast({1, 2, 3}, {2, 3, 4}, 0.5));
  EXPECT_FALSE(JaccardAtLeast({1, 2, 3}, {2, 3, 4}, 0.51));
  EXPECT_TRUE(JaccardAtLeast({1}, {2}, 0.0));  // t == 0 always true
  EXPECT_FALSE(JaccardAtLeast({}, {}, 0.5));
}

// Property sweep: JaccardAtLeast must agree with the direct computation
// for random sets across thresholds, including borderline values.
class JaccardPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(JaccardPropertyTest, PredicateMatchesDirectComputation) {
  const double threshold = GetParam();
  Rng rng(static_cast<uint64_t>(threshold * 1000) + 1);
  for (int trial = 0; trial < 2000; ++trial) {
    TokenVector a, b;
    const size_t na = 1 + rng.NextBelow(8);
    const size_t nb = 1 + rng.NextBelow(8);
    for (size_t i = 0; i < na; ++i) {
      a.push_back(static_cast<TokenId>(rng.NextBelow(12)));
    }
    for (size_t i = 0; i < nb; ++i) {
      b.push_back(static_cast<TokenId>(rng.NextBelow(12)));
    }
    NormalizeTokenSet(&a);
    NormalizeTokenSet(&b);
    const bool expected = Jaccard(a, b) >= threshold;
    EXPECT_EQ(JaccardAtLeast(a, b, threshold), expected)
        << "threshold=" << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, JaccardPropertyTest,
                         ::testing::Values(0.1, 0.2, 0.25, 1.0 / 3, 0.4, 0.5,
                                           0.6, 2.0 / 3, 0.75, 0.8, 0.9,
                                           1.0));

}  // namespace
}  // namespace stps
