#include "text/token_set.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stps {
namespace {

TEST(TokenSetTest, NormalizeSortsAndDeduplicates) {
  TokenVector v = {5, 1, 3, 1, 5, 2};
  NormalizeTokenSet(&v);
  EXPECT_EQ(v, (TokenVector{1, 2, 3, 5}));
  EXPECT_TRUE(IsNormalizedTokenSet(v));
}

// Spans cannot bind brace lists directly; TV materialises a temporary
// vector for the duration of the call.
using TV = TokenVector;

TEST(TokenSetTest, IsNormalizedRejectsDuplicatesAndDisorder) {
  EXPECT_TRUE(IsNormalizedTokenSet(TV{}));
  EXPECT_TRUE(IsNormalizedTokenSet(TV{7}));
  EXPECT_FALSE(IsNormalizedTokenSet(TV{1, 1}));
  EXPECT_FALSE(IsNormalizedTokenSet(TV{2, 1}));
}

TEST(TokenSetTest, OverlapSizeBasics) {
  EXPECT_EQ(OverlapSize(TV{1, 2, 3}, TV{2, 3, 4}), 2u);
  EXPECT_EQ(OverlapSize(TV{1, 2, 3}, TV{4, 5}), 0u);
  EXPECT_EQ(OverlapSize(TV{}, TV{1}), 0u);
  EXPECT_EQ(OverlapSize(TV{1, 2}, TV{1, 2}), 2u);
}

TEST(TokenSetTest, OverlapSizeAtLeastIsExactWhenReachable) {
  const TokenVector a = {1, 2, 3, 4, 5};
  const TokenVector b = {2, 4, 6, 8};
  EXPECT_EQ(OverlapSizeAtLeast(a, b, 0), 2u);
  EXPECT_EQ(OverlapSizeAtLeast(a, b, 2), 2u);
}

TEST(TokenSetTest, OverlapSizeAtLeastAbandonsEarly) {
  const TokenVector a = {1, 2, 3};
  const TokenVector b = {10, 11, 12};
  // Requirement 4 can never be met with 3-element sets; result < 4.
  EXPECT_LT(OverlapSizeAtLeast(a, b, 4), 4u);
}

TEST(TokenSetTest, JaccardKnownValues) {
  EXPECT_DOUBLE_EQ(Jaccard(TV{1, 2}, TV{1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Jaccard(TV{1, 2}, TV{3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(Jaccard(TV{1, 2, 3}, TV{2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(Jaccard(TV{}, TV{}), 0.0);  // no evidence convention
  EXPECT_DOUBLE_EQ(Jaccard(TV{1}, TV{}), 0.0);
}

TEST(TokenSetTest, JaccardAtLeastAgreesWithJaccardOnThreshold) {
  EXPECT_TRUE(JaccardAtLeast(TV{1, 2, 3}, TV{2, 3, 4}, 0.5));
  EXPECT_FALSE(JaccardAtLeast(TV{1, 2, 3}, TV{2, 3, 4}, 0.51));
  EXPECT_TRUE(JaccardAtLeast(TV{1}, TV{2}, 0.0));  // t == 0 always true
  EXPECT_FALSE(JaccardAtLeast(TV{}, TV{}, 0.5));
}

TEST(TokenSetTest, OverlapSizeAtLeastEdgeCases) {
  // Empty sets: overlap is 0 whatever the requirement.
  EXPECT_EQ(OverlapSizeAtLeast(TV{}, TV{}, 0), 0u);
  EXPECT_EQ(OverlapSizeAtLeast(TV{}, TV{1, 2}, 1), 0u);
  EXPECT_EQ(OverlapSizeAtLeast(TV{1, 2}, TV{}, 1), 0u);
  // required = 0 never abandons: the count is exact.
  EXPECT_EQ(OverlapSizeAtLeast(TV{1, 2, 3}, TV{2, 3, 4}, 0), 2u);
  // Single-token sets.
  EXPECT_EQ(OverlapSizeAtLeast(TV{5}, TV{5}, 1), 1u);
  EXPECT_EQ(OverlapSizeAtLeast(TV{5}, TV{6}, 1), 0u);
  // Requirement above both sizes.
  EXPECT_LT(OverlapSizeAtLeast(TV{1}, TV{1}, 2), 2u);
}

TEST(TokenSetTest, JaccardAtLeastEdgeCases) {
  // threshold = 1.0 demands equality.
  EXPECT_TRUE(JaccardAtLeast(TV{1, 2, 3}, TV{1, 2, 3}, 1.0));
  EXPECT_FALSE(JaccardAtLeast(TV{1, 2, 3}, TV{1, 2}, 1.0));  // strict subset
  EXPECT_FALSE(JaccardAtLeast(TV{1, 2}, TV{1, 3}, 1.0));
  // Single-token sets: Jaccard is 0 or 1, nothing between.
  EXPECT_TRUE(JaccardAtLeast(TV{9}, TV{9}, 1.0));
  EXPECT_FALSE(JaccardAtLeast(TV{9}, TV{8}, 0.01));
  // Empty sets fail every positive threshold but pass t = 0.
  EXPECT_FALSE(JaccardAtLeast(TV{}, TV{1}, 0.0001));
  EXPECT_TRUE(JaccardAtLeast(TV{}, TV{}, 0.0));
}

// Property sweep: JaccardAtLeast must agree with the exact rational
// comparison overlap/union >= threshold for random sets across thresholds,
// including borderline values. The oracle divides in long double: with
// union <= 16, any rational o/u distinct from the 53-bit threshold differs
// from it by at least 1/(16 * 2^52) ~ 2^-56, far above the 2^-64 rounding
// error of the 64-bit-mantissa division, so the comparison is error-free.
// (A double-division oracle would be wrong: e.g. 1.0/10.0 rounds up to the
// double 0.1, which is strictly greater than the rational 1/10.)
class JaccardPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(JaccardPropertyTest, PredicateMatchesDirectComputation) {
  const double threshold = GetParam();
  Rng rng(static_cast<uint64_t>(threshold * 1000) + 1);
  for (int trial = 0; trial < 2000; ++trial) {
    TokenVector a, b;
    const size_t na = 1 + rng.NextBelow(8);
    const size_t nb = 1 + rng.NextBelow(8);
    for (size_t i = 0; i < na; ++i) {
      a.push_back(static_cast<TokenId>(rng.NextBelow(12)));
    }
    for (size_t i = 0; i < nb; ++i) {
      b.push_back(static_cast<TokenId>(rng.NextBelow(12)));
    }
    NormalizeTokenSet(&a);
    NormalizeTokenSet(&b);
    const size_t overlap = OverlapSize(a, b);
    const size_t unions = a.size() + b.size() - overlap;
    const bool expected =
        unions > 0 && static_cast<long double>(overlap) / unions >=
                          static_cast<long double>(threshold);
    EXPECT_EQ(JaccardAtLeast(a, b, threshold), expected)
        << "threshold=" << threshold << " overlap=" << overlap
        << " union=" << unions;
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, JaccardPropertyTest,
                         ::testing::Values(0.1, 0.2, 0.25, 1.0 / 3, 0.4, 0.5,
                                           0.6, 2.0 / 3, 0.75, 0.8, 0.9,
                                           1.0));

}  // namespace
}  // namespace stps
