#include "text/dictionary.h"

#include <gtest/gtest.h>

namespace stps {
namespace {

TEST(DictionaryTest, InternAssignsStableIds) {
  Dictionary dict;
  const TokenId a = dict.Intern("alpha");
  const TokenId b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, LookupFindsOnlyInterned) {
  Dictionary dict;
  const TokenId a = dict.Intern("alpha");
  TokenId out = 999;
  EXPECT_TRUE(dict.Lookup("alpha", &out));
  EXPECT_EQ(out, a);
  EXPECT_FALSE(dict.Lookup("missing", &out));
}

TEST(DictionaryTest, FrequencyCountsOccurrences) {
  Dictionary dict;
  const TokenId a = dict.Intern("a");           // freq 1
  dict.Intern("a");                             // freq 2
  const TokenId b = dict.Intern("b", false);    // freq 0
  dict.CountOccurrence(b);                      // freq 1
  EXPECT_EQ(dict.Frequency(a), 2u);
  EXPECT_EQ(dict.Frequency(b), 1u);
}

TEST(DictionaryTest, FinalizeOrdersByAscendingFrequency) {
  Dictionary dict;
  dict.Intern("common");
  dict.Intern("common");
  dict.Intern("common");
  dict.Intern("rare");
  dict.Intern("mid");
  dict.Intern("mid");
  dict.FinalizeByFrequency();
  TokenId rare, mid, common;
  ASSERT_TRUE(dict.Lookup("rare", &rare));
  ASSERT_TRUE(dict.Lookup("mid", &mid));
  ASSERT_TRUE(dict.Lookup("common", &common));
  EXPECT_LT(rare, mid);
  EXPECT_LT(mid, common);
  // Strings and frequencies follow the ids.
  EXPECT_EQ(dict.TokenString(rare), "rare");
  EXPECT_EQ(dict.Frequency(common), 3u);
  EXPECT_TRUE(dict.finalized());
}

TEST(DictionaryTest, FinalizeBreaksTiesLexicographically) {
  Dictionary dict;
  dict.Intern("zebra");
  dict.Intern("apple");
  dict.FinalizeByFrequency();
  TokenId zebra, apple;
  ASSERT_TRUE(dict.Lookup("zebra", &zebra));
  ASSERT_TRUE(dict.Lookup("apple", &apple));
  EXPECT_LT(apple, zebra);
}

TEST(DictionaryTest, RemapTranslatesAndSortsTokenVectors) {
  Dictionary dict;
  const TokenId common = dict.Intern("common");
  dict.Intern("common");
  const TokenId rare = dict.Intern("rare");
  TokenVector doc = {common, rare};
  const std::vector<TokenId> permutation = dict.FinalizeByFrequency();
  Dictionary::Remap(permutation, &doc);
  // After remap, ids are in frequency order: rare < common.
  TokenId new_rare, new_common;
  ASSERT_TRUE(dict.Lookup("rare", &new_rare));
  ASSERT_TRUE(dict.Lookup("common", &new_common));
  EXPECT_EQ(doc, (TokenVector{new_rare, new_common}));
}

TEST(DictionaryTest, FinalizePermutationIsBijective) {
  Dictionary dict;
  for (int i = 0; i < 50; ++i) {
    const std::string token = "tok" + std::to_string(i);
    for (int j = 0; j <= i % 7; ++j) dict.Intern(token);
  }
  const std::vector<TokenId> permutation = dict.FinalizeByFrequency();
  std::vector<bool> seen(permutation.size(), false);
  for (const TokenId id : permutation) {
    ASSERT_LT(id, permutation.size());
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
  }
}

}  // namespace
}  // namespace stps
