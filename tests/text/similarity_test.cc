#include "text/similarity.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/token_set.h"

namespace stps {
namespace {

TEST(SimilarityBoundsTest, MinOverlapKnownValues) {
  // t/(1+t) * (|x|+|y|): for t=0.5 and sizes 4+4 -> ceil(8/3) = 3.
  EXPECT_EQ(MinOverlapForJaccard(4, 4, 0.5), 3u);
  // t=1 requires full overlap.
  EXPECT_EQ(MinOverlapForJaccard(5, 5, 1.0), 5u);
  EXPECT_EQ(MinOverlapForJaccard(3, 3, 0.0), 0u);
}

TEST(SimilarityBoundsTest, SizeBoundsKnownValues) {
  EXPECT_EQ(MinSizeForJaccard(10, 0.5), 5u);
  EXPECT_EQ(MaxSizeForJaccard(10, 0.5), 20u);
  EXPECT_EQ(MinSizeForJaccard(10, 0.0), 0u);
  EXPECT_EQ(MinSizeForJaccard(3, 1.0), 3u);
  EXPECT_EQ(MaxSizeForJaccard(3, 1.0), 3u);
}

TEST(SimilarityBoundsTest, PrefixLengthKnownValues) {
  // |x|=5, t=0.8: the double 0.8 is strictly greater than the rational 4/5
  // (0.8 rounds up in binary), so a match must keep all 5 tokens and a
  // single-token prefix is sound. The rounded-arithmetic answer (keep
  // ceil(0.8*5)=4, prefix 2) was conservative but not tight.
  EXPECT_EQ(PrefixLengthForJaccard(5, 0.8), 1u);
  // A representable threshold behaves classically: keep ceil(0.75*5)=4.
  EXPECT_EQ(PrefixLengthForJaccard(5, 0.75), 2u);
  // t -> 1 leaves a single-token prefix.
  EXPECT_EQ(PrefixLengthForJaccard(7, 1.0), 1u);
  EXPECT_EQ(PrefixLengthForJaccard(0, 0.5), 0u);
  // Index prefix is never longer than the probing prefix.
  for (size_t n = 1; n <= 20; ++n) {
    EXPECT_LE(IndexPrefixLengthForJaccard(n, 0.6),
              PrefixLengthForJaccard(n, 0.6));
  }
}

// Property: all bounds are conservative with respect to JaccardAtLeast —
// no true match may violate a filter.
class BoundsPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(BoundsPropertyTest, FiltersNeverRejectTrueMatches) {
  const double t = GetParam();
  Rng rng(777);
  int matches_checked = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    TokenVector a, b;
    const size_t na = 1 + rng.NextBelow(10);
    const size_t nb = 1 + rng.NextBelow(10);
    for (size_t i = 0; i < na; ++i) {
      a.push_back(static_cast<TokenId>(rng.NextBelow(14)));
    }
    for (size_t i = 0; i < nb; ++i) {
      b.push_back(static_cast<TokenId>(rng.NextBelow(14)));
    }
    NormalizeTokenSet(&a);
    NormalizeTokenSet(&b);
    if (!JaccardAtLeast(a, b, t)) continue;
    ++matches_checked;
    // Size filter.
    EXPECT_GE(b.size(), MinSizeForJaccard(a.size(), t));
    EXPECT_LE(b.size(), MaxSizeForJaccard(a.size(), t));
    // Overlap filter.
    EXPECT_GE(OverlapSize(a, b), MinOverlapForJaccard(a.size(), b.size(), t));
    // Prefix filter: some token shared within both probing prefixes.
    const size_t pa = PrefixLengthForJaccard(a.size(), t);
    const size_t pb = PrefixLengthForJaccard(b.size(), t);
    const TokenVector prefix_a(a.begin(), a.begin() + pa);
    const TokenVector prefix_b(b.begin(), b.begin() + pb);
    EXPECT_GE(OverlapSize(prefix_a, prefix_b), 1u)
        << "prefix filter rejected a true match at t=" << t;
  }
  EXPECT_GT(matches_checked, 0) << "sweep produced no matches at t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Thresholds, BoundsPropertyTest,
                         ::testing::Values(0.1, 0.3, 1.0 / 3, 0.5, 0.6,
                                           2.0 / 3, 0.8, 0.9, 1.0));

}  // namespace
}  // namespace stps
