#include "query/spatial_keyword.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"
#include "text/token_set.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

TEST(BooleanRangeTest, MatchesBruteForce) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const SpatialKeywordIndex index(db);
  Rng rng(99);
  for (int q = 0; q < 40; ++q) {
    const Point center{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const double radius = rng.Uniform(0.02, 0.4);
    TokenVector required;
    // 0-2 random required tokens from the vocabulary.
    const size_t count = rng.NextBelow(3);
    for (size_t i = 0; i < count; ++i) {
      required.push_back(
          static_cast<TokenId>(rng.NextBelow(db.dictionary().size())));
    }
    NormalizeTokenSet(&required);
    std::vector<ObjectId> expected;
    for (const STObject& o : db.AllObjects()) {
      if (!WithinDistance(o.loc, center, radius)) continue;
      if (OverlapSize(o.doc, required) != required.size()) continue;
      expected.push_back(o.id);
    }
    EXPECT_EQ(index.BooleanRange(center, radius, required), expected);
  }
}

TEST(BooleanRangeTest, EmptyKeywordListIsPureRangeQuery) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const SpatialKeywordIndex index(db);
  const Point center{0.5, 0.5};
  const auto hits = index.BooleanRange(center, 0.3, {});
  size_t expected = 0;
  for (const STObject& o : db.AllObjects()) {
    if (WithinDistance(o.loc, center, 0.3)) ++expected;
  }
  EXPECT_EQ(hits.size(), expected);
}

class TopKRelevantTest : public ::testing::TestWithParam<double> {};

TEST_P(TopKRelevantTest, MatchesBruteForceRanking) {
  const double alpha = GetParam();
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const SpatialKeywordIndex index(db);
  Rng rng(7);
  for (int q = 0; q < 20; ++q) {
    const Point loc{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    TokenVector doc;
    for (size_t i = 0; i < 3; ++i) {
      doc.push_back(
          static_cast<TokenId>(rng.NextBelow(db.dictionary().size())));
    }
    NormalizeTokenSet(&doc);
    const size_t k = 1 + rng.NextBelow(12);
    // Brute-force reference under the same score/tie definition.
    std::vector<SpatialKeywordIndex::ScoredObject> all;
    for (const STObject& o : db.AllObjects()) {
      const double spatial = 1.0 - Distance(o.loc, loc) / index.diagonal();
      all.push_back(
          {o.id, alpha * spatial + (1.0 - alpha) * Jaccard(doc, o.doc)});
    }
    std::sort(all.begin(), all.end(),
              [](const auto& x, const auto& y) {
                if (x.score != y.score) return x.score > y.score;
                return x.id < y.id;
              });
    all.resize(std::min(all.size(), k));
    const auto actual = index.TopKRelevant(loc, doc, k, alpha);
    ASSERT_EQ(actual.size(), all.size()) << "alpha=" << alpha << " k=" << k;
    for (size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(actual[i].id, all[i].id) << "rank " << i;
      EXPECT_NEAR(actual[i].score, all[i].score, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, TopKRelevantTest,
                         ::testing::Values(0.0, 0.3, 0.5, 0.8, 1.0));

TEST(TopKRelevantTest, QueryPointOutsideBounds) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const SpatialKeywordIndex index(db);
  // Far outside the data: the expanding ring must still reach everything.
  const auto result = index.TopKRelevant({25.0, -25.0}, {}, 5, 1.0);
  EXPECT_EQ(result.size(), 5u);
  // Best object is the one closest to the query point.
  double best = 1e18;
  for (const STObject& o : db.AllObjects()) {
    best = std::min(best, Distance(o.loc, {25.0, -25.0}));
  }
  EXPECT_NEAR(Distance(db.object(result[0].id).loc, {25.0, -25.0}), best,
              1e-12);
}

TEST(TopKRelevantTest, KZeroAndKLargerThanDatabase) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const SpatialKeywordIndex index(db);
  EXPECT_TRUE(index.TopKRelevant({0.5, 0.5}, {}, 0, 0.5).empty());
  const auto all =
      index.TopKRelevant({0.5, 0.5}, {}, db.num_objects() + 10, 0.5);
  EXPECT_EQ(all.size(), db.num_objects());
}

}  // namespace
}  // namespace stps
