#include "query/ir_tree.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"
#include "text/token_set.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

TEST(BloomTokenSignatureTest, NoFalseNegatives) {
  BloomTokenSignature sig;
  for (TokenId t = 0; t < 200; t += 3) sig.Add(t);
  for (TokenId t = 0; t < 200; t += 3) {
    EXPECT_TRUE(sig.MightContain(t)) << t;
  }
}

TEST(BloomTokenSignatureTest, MostAbsentTokensAreRuledOut) {
  BloomTokenSignature sig;
  for (TokenId t = 0; t < 30; ++t) sig.Add(t);
  int false_positives = 0;
  for (TokenId t = 1000; t < 2000; ++t) {
    if (sig.MightContain(t)) ++false_positives;
  }
  // 60 bits set out of 512: the false-positive rate should be tiny.
  EXPECT_LT(false_positives, 50);
}

TEST(BloomTokenSignatureTest, MergeIsUnion) {
  BloomTokenSignature a, b;
  a.Add(1);
  b.Add(2);
  a.Merge(b);
  EXPECT_TRUE(a.MightContain(1));
  EXPECT_TRUE(a.MightContain(2));
}

TEST(IRTreeTest, EmptyDatabase) {
  DatabaseBuilder builder;
  const ObjectDatabase db = std::move(builder).Build();
  const IRTree tree(db);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.TopKRelevant({0, 0}, {}, 5, 0.5).empty());
  EXPECT_TRUE(tree.BooleanRange({0, 0}, 1.0, {}).empty());
}

class IRTreeQueryTest : public ::testing::TestWithParam<double> {};

TEST_P(IRTreeQueryTest, TopKMatchesSpatialKeywordIndex) {
  const double alpha = GetParam();
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const IRTree ir(db, 16);
  const SpatialKeywordIndex reference(db);
  Rng rng(88);
  for (int q = 0; q < 20; ++q) {
    const Point loc{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    TokenVector doc;
    for (size_t i = 0; i < 1 + rng.NextBelow(4); ++i) {
      doc.push_back(
          static_cast<TokenId>(rng.NextBelow(db.dictionary().size())));
    }
    NormalizeTokenSet(&doc);
    const size_t k = 1 + rng.NextBelow(10);
    const auto expected = reference.TopKRelevant(loc, doc, k, alpha);
    const auto actual = ir.TopKRelevant(loc, doc, k, alpha);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id) << "rank " << i;
      EXPECT_NEAR(actual[i].score, expected[i].score, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, IRTreeQueryTest,
                         ::testing::Values(0.0, 0.4, 0.7, 1.0));

TEST(IRTreeTest, BooleanRangeMatchesBruteForce) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const IRTree tree(db, 12);
  Rng rng(77);
  for (int q = 0; q < 30; ++q) {
    const Point center{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const double radius = rng.Uniform(0.05, 0.5);
    TokenVector required;
    for (size_t i = 0; i < rng.NextBelow(3); ++i) {
      required.push_back(
          static_cast<TokenId>(rng.NextBelow(db.dictionary().size())));
    }
    NormalizeTokenSet(&required);
    std::vector<ObjectId> expected;
    for (const STObject& o : db.AllObjects()) {
      if (!WithinDistance(o.loc, center, radius)) continue;
      if (OverlapSize(o.doc, required) != required.size()) continue;
      expected.push_back(o.id);
    }
    EXPECT_EQ(tree.BooleanRange(center, radius, required), expected);
  }
}

TEST(IRTreeTest, HeightGrowsWithData) {
  RandomDbSpec spec;
  spec.num_users = 60;
  spec.min_objects = 10;
  spec.max_objects = 20;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  const IRTree tree(db, 8);
  EXPECT_GE(tree.Height(), 3);  // ~900 objects at fanout 8
}

}  // namespace
}  // namespace stps
