// QueryServer end-to-end tests: an in-process server on an ephemeral
// loopback port, exercised by real sockets. Covers protocol correctness
// (responses match direct library calls bit-for-bit), update visibility
// across PUBLISH epochs, concurrent clients, admission-control
// backpressure, and graceful shutdown.

#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/stpsjoin.h"
#include "core/update.h"
#include "io/binary.h"
#include "test_util.h"

namespace stps {
namespace {

// Minimal blocking line-protocol client with poll-based read timeouts.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~TestClient() { Close(); }

  bool connected() const { return fd_ >= 0; }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool SendLine(const std::string& line) {
    const std::string data = line + "\n";
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads one '\n'-terminated line (without the newline). Empty string on
  // timeout, error, or peer close with nothing buffered.
  std::string ReadLine(int timeout_ms = 5000) {
    for (;;) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) return "";
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  // Sends a request and reads the "OK <n> <epoch>" header plus n rows.
  std::vector<std::string> Query(const std::string& request) {
    std::vector<std::string> lines;
    if (!SendLine(request)) return lines;
    const std::string header = ReadLine();
    lines.push_back(header);
    size_t n_rows = 0;
    if (std::sscanf(header.c_str(), "OK %zu", &n_rows) == 1) {
      for (size_t i = 0; i < n_rows; ++i) lines.push_back(ReadLine());
    }
    return lines;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

// The rows the server should emit for `pairs`, in the server's format.
std::vector<std::string> ExpectedRows(const ObjectDatabase& db,
                                      const std::vector<ScoredUserPair>& pairs,
                                      uint64_t epoch) {
  std::vector<std::string> rows;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "OK %zu %llu", pairs.size(),
                static_cast<unsigned long long>(epoch));
  rows.push_back(buffer);
  for (const ScoredUserPair& pair : pairs) {
    std::snprintf(buffer, sizeof(buffer), " %.6f", pair.score);
    rows.push_back(std::string(db.UserName(pair.a)) + " " +
                   std::string(db.UserName(pair.b)) + buffer);
  }
  return rows;
}

class ServerTest : public ::testing::Test {
 protected:
  void SeedRandom(size_t num_users = 16, uint64_t seed = 5) {
    testing_util::RandomDbSpec spec;
    spec.num_users = num_users;
    spec.seed = seed;
    db_.SeedFrom(testing_util::BuildRandomDatabase(spec));
  }

  void StartServer(ServerOptions options = {}) {
    server_ = std::make_unique<QueryServer>(&db_, options);
    const Status status = server_->Start();
    ASSERT_TRUE(status.ok()) << status.message();
    ASSERT_GT(server_->port(), 0);
  }

  UpdatableDatabase db_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(ServerTest, PingEpochAndUnknownCommand) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine("PING"));
  EXPECT_EQ(client.ReadLine(), "OK pong");
  ASSERT_TRUE(client.SendLine("EPOCH"));
  EXPECT_EQ(client.ReadLine(), "OK 0");
  ASSERT_TRUE(client.SendLine("FROBNICATE"));
  EXPECT_EQ(client.ReadLine(), "ERR unknown command");
  ASSERT_TRUE(client.SendLine("QUIT"));
  EXPECT_EQ(client.ReadLine(), "OK bye");
}

TEST_F(ServerTest, JoinTopKProbeMatchLibraryCalls) {
  SeedRandom();
  StartServer();
  const auto snapshot = db_.snapshot();
  const ObjectDatabase& db = snapshot->db;

  STPSQuery join;
  join.eps_loc = 0.15;
  join.eps_doc = 0.25;
  join.eps_u = 0.2;
  JoinOptions join_options;
  join_options.algorithm = JoinAlgorithm::kSPPJF;
  const auto join_expected = ExpectedRows(
      db, RunSTPSJoin(db, join, join_options), snapshot->epoch);

  TopKQuery topk;
  topk.eps_loc = 0.15;
  topk.eps_doc = 0.25;
  topk.k = 5;
  const auto topk_expected = ExpectedRows(
      db, RunTopKSTPSJoin(db, topk, TopKAlgorithm::kP), snapshot->epoch);

  STPSQuery probe_query = join;
  const auto probe_expected = ExpectedRows(
      db, FindSimilarUsers(db, 0, probe_query), snapshot->epoch);

  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.Query("JOIN 0.15 0.25 0.2 ALGO sppjf"), join_expected);
  // kAuto, sketch, and threaded runs return identical rows (exactness).
  EXPECT_EQ(client.Query("JOIN 0.15 0.25 0.2"), join_expected);
  EXPECT_EQ(client.Query("JOIN 0.15 0.25 0.2 ALGO sppjb SKETCH THREADS 2"),
            join_expected);
  EXPECT_EQ(client.Query("TOPK 0.15 0.25 5 ALGO p"), topk_expected);
  EXPECT_EQ(client.Query("TOPK 0.15 0.25 5 SKETCH"), topk_expected);
  const std::string probe_request =
      "PROBE " + std::string(db.UserName(0)) + " 0.15 0.25 0.2";
  EXPECT_EQ(client.Query(probe_request), probe_expected);
}

TEST_F(ServerTest, MalformedRequestsGetUsageErrors) {
  SeedRandom(8);
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const auto expect_err = [&client](const std::string& request) {
    ASSERT_TRUE(client.SendLine(request));
    const std::string response = client.ReadLine();
    EXPECT_EQ(response.rfind("ERR", 0), 0u) << request << " -> " << response;
  };
  expect_err("JOIN abc 0.2 0.3");          // non-numeric field
  expect_err("JOIN 0.1 0.2");               // missing eps_u
  expect_err("JOIN 0.1 2.0 0.5");           // eps_doc out of range
  expect_err("JOIN 0.1 0 0 ALGO sppjf");    // filter algo needs eps_doc > 0
  expect_err("JOIN 0.1 0.2 0.3 THREADS 0"); // threads below minimum
  expect_err("JOIN 0.1 0.2 0.3 BOGUS");     // unknown option token
  // Non-finite thresholds must be parse errors: NaN compares false
  // against every range bound, so letting it through would reach the
  // STPS_CHECKs inside the join algorithms and abort the server.
  expect_err("JOIN 1 nan 1 ALGO sppjf");
  expect_err("JOIN inf 0.2 0.3");
  expect_err("TOPK nan 0.2 5");
  expect_err("INSERT u nan nan -");
  expect_err("TOPK 0.1 0.2 0");             // k = 0
  expect_err("TOPK 0.1 0.2 -3");            // negative k must not wrap
  expect_err("PROBE nosuchuser 0.1 0.2 0.3");
  expect_err("PROBE nosuchuser -0.1 0.2 0.3");  // thresholds out of range
  expect_err("PROBE nosuchuser 0.1 2.0 0.3");   // eps_doc > 1
  expect_err("DELETE nosuchuser");
  expect_err("INSERT onlyuser");            // too few fields
  expect_err("INSERT u 1.0zz 2.0 a,b");     // trailing garbage in number
  expect_err("SLEEP notanumber");
  // The connection still works after every error.
  ASSERT_TRUE(client.SendLine("PING"));
  EXPECT_EQ(client.ReadLine(), "OK pong");
}

TEST_F(ServerTest, InsertDeletePublishEpochVisibility) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.SendLine("INSERT alice 0.10 0.10 coffee,park"));
  EXPECT_EQ(client.ReadLine(), "OK 1 0");
  ASSERT_TRUE(client.SendLine("INSERT bob 0.11 0.10 coffee 3.5"));
  EXPECT_EQ(client.ReadLine(), "OK 2 0");
  // Queries still see the empty epoch-0 snapshot.
  EXPECT_EQ(client.Query("JOIN 0.2 0.5 0.3").front(), "OK 0 0");

  ASSERT_TRUE(client.SendLine("PUBLISH"));
  // Reply format: OK <epoch> <delta|full|unchanged> <ms>. The first
  // publish is always a full rebuild (epoch 0 has no users to splice).
  std::string publish_reply = client.ReadLine();
  EXPECT_EQ(publish_reply.rfind("OK 1 full ", 0), 0u) << publish_reply;
  const auto rows = client.Query("JOIN 0.2 0.5 0.3");
  ASSERT_EQ(rows.size(), 2u);  // alice-bob match at these thresholds
  EXPECT_EQ(rows[0], "OK 1 1");
  EXPECT_EQ(rows[1].rfind("alice bob ", 0), 0u) << rows[1];

  ASSERT_TRUE(client.SendLine("DELETE alice"));
  EXPECT_EQ(client.ReadLine(), "OK 1 1");
  ASSERT_TRUE(client.SendLine("DELETE alice"));
  EXPECT_EQ(client.ReadLine(), "ERR unknown user");
  ASSERT_TRUE(client.SendLine("PUBLISH"));
  // Deleting 1 of 2 users exceeds the default dirty fraction -> full.
  publish_reply = client.ReadLine();
  EXPECT_EQ(publish_reply.rfind("OK 2 full ", 0), 0u) << publish_reply;
  EXPECT_EQ(client.Query("JOIN 0.2 0.5 0.3").front(), "OK 0 2");
  // A clean PUBLISH reports the existing epoch without bumping it.
  ASSERT_TRUE(client.SendLine("PUBLISH"));
  publish_reply = client.ReadLine();
  EXPECT_EQ(publish_reply, "OK 2 unchanged 0.000") << publish_reply;

  ASSERT_TRUE(client.SendLine("STATS"));
  const std::string stats = client.ReadLine();
  EXPECT_NE(stats.find("epoch=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("inserted=2"), std::string::npos) << stats;
}

TEST_F(ServerTest, ServesManyConcurrentClients) {
  SeedRandom(12, /*seed=*/9);
  StartServer();
  const auto snapshot = db_.snapshot();
  STPSQuery join;
  join.eps_loc = 0.15;
  join.eps_doc = 0.25;
  join.eps_u = 0.2;
  JoinOptions options;
  options.algorithm = JoinAlgorithm::kSPPJF;
  const auto join_expected = ExpectedRows(
      snapshot->db, RunSTPSJoin(snapshot->db, join, options), snapshot->epoch);

  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &failures, &join_expected] {
      TestClient client(server_->port());
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < 3; ++round) {
        const std::string request = (c % 2 == 0)
                                        ? "JOIN 0.15 0.25 0.2 ALGO sppjf"
                                        : "JOIN 0.15 0.25 0.2 ALGO brute";
        if (client.Query(request) != join_expected) {
          failures.fetch_add(1);
          return;
        }
        if (!client.SendLine("PING") || client.ReadLine() != "OK pong") {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // The served counter is bumped after the response send, so a client can
  // observe its reply before the worker's increment: poll briefly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (server_->stats().requests_served <
             static_cast<uint64_t>(kClients * 6) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const ServerStats stats = server_->stats();
  EXPECT_GE(stats.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_GE(stats.requests_served, static_cast<uint64_t>(kClients * 6));
}

TEST_F(ServerTest, AdmissionControlRejectsWhenSaturated) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_pending = 1;
  StartServer(options);

  // Occupy the only worker.
  TestClient sleeper(server_->port());
  ASSERT_TRUE(sleeper.connected());
  ASSERT_TRUE(sleeper.SendLine("SLEEP 1500"));

  // Give the worker time to pick the sleeper up, then flood. One
  // connection fits the pending queue; the rest must be turned away.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  int rejected = 0;
  std::vector<std::unique_ptr<TestClient>> flood;
  for (int i = 0; i < 5; ++i) {
    flood.push_back(std::make_unique<TestClient>(server_->port()));
    ASSERT_TRUE(flood.back()->connected());
    // A rejected connection receives "ERR busy" immediately.
    const std::string response = flood.back()->ReadLine(400);
    if (response == "ERR busy") ++rejected;
  }
  EXPECT_GE(rejected, 1);
  EXPECT_EQ(sleeper.ReadLine(/*timeout_ms=*/5000), "OK slept");
  EXPECT_GE(server_->stats().connections_rejected,
            static_cast<uint64_t>(rejected));
}

TEST_F(ServerTest, GracefulShutdownDrainsAndStopsAccepting) {
  SeedRandom(8);
  StartServer();
  const int port = server_->port();

  TestClient client(port);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine("SHUTDOWN"));
  EXPECT_EQ(client.ReadLine(), "OK shutting down");
  EXPECT_TRUE(server_->shutdown_requested());
  server_->WaitForShutdownRequest();  // returns immediately once flagged
  server_->Shutdown();
  server_->Shutdown();  // idempotent

  // The listening socket is gone: new connections are refused.
  TestClient late(port);
  EXPECT_FALSE(late.connected());
}

TEST_F(ServerTest, QueriesKeepTheirSnapshotAcrossConcurrentWrites) {
  SeedRandom(10, /*seed=*/21);
  StartServer();
  std::atomic<bool> writer_done{false};
  std::thread writer([this, &writer_done] {
    // Fixed work so the test asserts real epoch churn regardless of how
    // fast the query loop opposite runs: 50 inserts, publish every 5.
    for (int i = 1; i <= 50; ++i) {
      RawObject object;
      object.user = "newuser" + std::to_string(i % 4);
      object.loc = {0.4, 0.4};
      object.keywords = {"kw1", "kw2"};
      db_.InsertObject(object);
      if (i % 5 == 0) db_.Publish();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    writer_done.store(true);
  });

  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  int rounds = 0;
  // Query throughout the writer's lifetime (and at least a few times).
  while (!writer_done.load() || rounds < 5) {
    const auto rows = client.Query("JOIN 0.15 0.25 0.2 ALGO sppjf");
    ASSERT_FALSE(rows.empty());
    // Each response is internally consistent: the header row count equals
    // the number of rows actually sent (already enforced by Query's
    // reader — a short read would surface as an empty trailing line).
    for (size_t i = 1; i < rows.size(); ++i) EXPECT_FALSE(rows[i].empty());
    EXPECT_EQ(rows.front().rfind("OK ", 0), 0u) << rows.front();
    ++rounds;
  }
  writer.join();
  // SeedFrom published epoch 1; the writer's publishes moved it to 11.
  EXPECT_GE(db_.epoch(), 11u);
}

TEST(ReadOnlyServerTest, ServesMappedSnapshotAndRejectsWrites) {
  // End-to-end mmap serving: write a v3 snapshot, open it with mmap, and
  // serve it read-only. Queries must match direct library calls on the
  // mapped database; every write command must answer "ERR read-only".
  testing_util::RandomDbSpec spec;
  spec.num_users = 12;
  spec.seed = 31;
  const ObjectDatabase original = testing_util::BuildRandomDatabase(spec);
  const std::string path =
      std::string(::testing::TempDir()) + "/served.stpsdb";
  ASSERT_TRUE(WriteBinary(original, path).ok());
  Result<ObjectDatabase> mapped = ReadBinaryMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  auto snapshot = std::make_shared<DatabaseSnapshot>();
  snapshot->epoch = 7;
  snapshot->db = std::move(mapped).value();
  const ObjectDatabase& db = snapshot->db;
  QueryServer server(snapshot);
  EXPECT_TRUE(server.read_only());
  const Status status = server.Start();
  ASSERT_TRUE(status.ok()) << status.message();

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine("EPOCH"));
  EXPECT_EQ(client.ReadLine(), "OK 7");

  STPSQuery join;
  join.eps_loc = 0.15;
  join.eps_doc = 0.25;
  join.eps_u = 0.2;
  JoinOptions options;
  options.algorithm = JoinAlgorithm::kSPPJF;
  EXPECT_EQ(client.Query("JOIN 0.15 0.25 0.2 ALGO sppjf"),
            ExpectedRows(db, RunSTPSJoin(db, join, options), 7));

  for (const char* request :
       {"INSERT u 0.1 0.2 kw1", "DELETE user0", "PUBLISH"}) {
    ASSERT_TRUE(client.SendLine(request));
    EXPECT_EQ(client.ReadLine(), "ERR read-only server") << request;
  }

  ASSERT_TRUE(client.SendLine("STATS"));
  const std::string stats = client.ReadLine();
  EXPECT_EQ(stats.rfind("OK epoch=7 ", 0), 0u) << stats;

  server.Shutdown();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stps
