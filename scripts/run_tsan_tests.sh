#!/usr/bin/env bash
# Builds the suite with ThreadSanitizer and runs the concurrency-relevant
# tests (thread pool, parallel determinism, cross-algorithm fuzz). Any
# data race in the work-stealing pool or the parallel join drivers fails
# the run.
# Usage: scripts/run_tsan_tests.sh [build_dir]
set -eu

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." -DSTPS_TSAN=ON
cmake --build "$BUILD_DIR" -j --target \
  thread_pool_test parallel_test consistency_fuzz_test sketch_test \
  planner_test update_test delta_publish_test server_test sharded_join_test

# halt_on_error so CI fails fast; second_deadlock_stack for lock-order
# reports that involve the pool mutex plus a client lock.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1${TSAN_OPTIONS:+ $TSAN_OPTIONS}"

cd "$BUILD_DIR"
ctest --output-on-failure -R 'thread_pool_test|parallel_test|consistency_fuzz_test|sketch_test|planner_test|update_test|delta_publish_test|server_test|sharded_join_test'
