#!/usr/bin/env python3
"""Diff two BENCH_*.json files and fail on regressions of named series.

Usage:
  compare_bench.py [--threshold 0.10] [--require EXPR ...] BASELINE NEW

Compares the benchmark artifacts the drivers in bench/ emit (an object
with a "rows" list plus top-level summary series). Two kinds of series
are checked:

  * top-level numeric fields ending in "_speedup" (higher is better):
    NEW must not fall more than `threshold` below BASELINE;
  * per-row timing fields ending in "_ns" or "_ms" (lower is better),
    matched by the row's identity keys (every non-measurement field):
    NEW must not exceed BASELINE by more than `threshold`.

Rows present in only one file are reported and ignored (sweeps may grow).
--require asserts a floor on a top-level field of NEW independent of the
baseline, e.g. --require high_density_speedup>=1.5 — used by the CI smoke
stage to keep a committed baseline honest.

Exit status: 0 = no regression, 1 = regression or failed requirement,
2 = usage/parse error. Stdlib only.
"""

import argparse
import json
import re
import sys

MEASUREMENT_SUFFIXES = ("_ns", "_ms", "_speedup")
MEASUREMENT_FIELDS = frozenset(
    {"matches", "signature_rejections", "scanned", "pairs", "probes",
     "speedup", "brute_pairs", "baseline_verified", "sketch_candidates",
     "sketch_rejections"}
)


def is_measurement(key):
    return key.endswith(MEASUREMENT_SUFFIXES) or key in MEASUREMENT_FIELDS


def row_identity(row):
    return tuple(
        sorted((k, v) for k, v in row.items() if not is_measurement(k))
    )


def fmt_identity(identity):
    return " ".join(f"{k}={v}" for k, v in identity)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def compare_rows(base_rows, new_rows, threshold):
    regressions = []
    new_by_id = {row_identity(r): r for r in new_rows}
    base_by_id = {row_identity(r): r for r in base_rows}
    for identity, base in base_by_id.items():
        new = new_by_id.get(identity)
        if new is None:
            print(f"  note: row dropped in NEW: {fmt_identity(identity)}")
            continue
        for key, base_value in base.items():
            if not key.endswith(("_ns", "_ms")):
                continue
            new_value = new.get(key)
            if not isinstance(new_value, (int, float)) or base_value <= 0:
                continue
            ratio = new_value / base_value
            if ratio > 1.0 + threshold:
                regressions.append(
                    f"{key} {base_value:g} -> {new_value:g} "
                    f"({(ratio - 1.0) * 100:+.1f}%) at {fmt_identity(identity)}"
                )
    for identity in new_by_id.keys() - base_by_id.keys():
        print(f"  note: new row not in BASELINE: {fmt_identity(identity)}")
    return regressions


def compare_summaries(base, new, threshold):
    regressions = []
    for key, base_value in base.items():
        if not key.endswith("_speedup"):
            continue
        if not isinstance(base_value, (int, float)) or base_value <= 0:
            continue
        new_value = new.get(key)
        if not isinstance(new_value, (int, float)):
            print(f"  note: summary series dropped in NEW: {key}")
            continue
        ratio = new_value / base_value
        if ratio < 1.0 - threshold:
            regressions.append(
                f"{key} {base_value:g} -> {new_value:g} "
                f"({(ratio - 1.0) * 100:+.1f}%)"
            )
    return regressions


def check_requirements(new, requirements):
    failures = []
    for expr in requirements:
        m = re.fullmatch(r"\s*([\w.]+)\s*(>=|<=)\s*([-+0-9.eE]+)\s*", expr)
        if m is None:
            print(f"error: cannot parse requirement {expr!r}", file=sys.stderr)
            sys.exit(2)
        key, op, bound = m.group(1), m.group(2), float(m.group(3))
        value = new.get(key)
        if not isinstance(value, (int, float)):
            failures.append(f"{key} missing from NEW (required {op} {bound:g})")
        elif (op == ">=" and value < bound) or (op == "<=" and value > bound):
            failures.append(f"{key} = {value:g}, required {op} {bound:g}")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed relative change (default 0.10)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="EXPR",
                        help="floor on a top-level field of NEW, "
                             "e.g. high_density_speedup>=1.5")
    parser.add_argument("baseline")
    parser.add_argument("new")
    args = parser.parse_args()

    base = load(args.baseline)
    new = load(args.new)
    print(f"comparing {args.baseline} -> {args.new} "
          f"(threshold {args.threshold:.0%})")

    regressions = compare_rows(base.get("rows", []), new.get("rows", []),
                               args.threshold)
    regressions += compare_summaries(base, new, args.threshold)
    failures = check_requirements(new, args.require)

    for r in regressions:
        print(f"  REGRESSION: {r}")
    for f in failures:
        print(f"  REQUIREMENT FAILED: {f}")
    if regressions or failures:
        return 1
    print("  ok: no regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
