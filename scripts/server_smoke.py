#!/usr/bin/env python3
"""End-to-end smoke test for `stps_cli serve`.

Launches the server on an ephemeral port with an empty database, drives
it with concurrent socket clients (inserts, publish, joins, top-k,
probes), checks every response, then shuts it down gracefully and
verifies a clean exit.

Usage: scripts/server_smoke.py path/to/stps_cli
"""

import socket
import subprocess
import sys
import threading

CLIENTS = 8
TIMEOUT_S = 30


class LineClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=TIMEOUT_S)
        self.buf = b""

    def close(self):
        self.sock.close()

    def read_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise RuntimeError("server closed connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def request(self, line, has_rows=False):
        """Sends one request; returns [header] plus, for query commands
        (has_rows), the "<n> <epoch>" header's n result rows. INSERT and
        DELETE answer "OK <live> <epoch>" — same shape, no rows — so the
        caller must say which protocol it expects."""
        self.sock.sendall((line + "\n").encode())
        header = self.read_line()
        lines = [header]
        parts = header.split()
        if has_rows and len(parts) == 3 and parts[0] == "OK" and parts[1].isdigit():
            for _ in range(int(parts[1])):
                lines.append(self.read_line())
        return lines


def expect(cond, message):
    if not cond:
        raise RuntimeError("smoke check failed: " + message)


def client_workload(port, client_id, errors):
    try:
        c = LineClient(port)
        expect(c.request("PING")[0] == "OK pong", "PING")
        # Everyone inserts a user in the shared hotspot plus a private one.
        user = f"smoke{client_id}"
        r = c.request(f"INSERT {user} 0.50 0.50 coffee,park,smoke")[0]
        expect(r.startswith("OK "), f"INSERT shared: {r}")
        r = c.request(f"INSERT {user} 0.9{client_id} 0.1 solo{client_id}")[0]
        expect(r.startswith("OK "), f"INSERT solo: {r}")
        # Queries are valid on whatever epoch is current (including 0).
        rows = c.request("JOIN 0.05 0.3 0.3", has_rows=True)
        expect(rows[0].startswith("OK "), f"JOIN: {rows[0]}")
        rows = c.request("TOPK 0.05 0.3 5 THREADS 2", has_rows=True)
        expect(rows[0].startswith("OK "), f"TOPK: {rows[0]}")
        c.request("BOGUS")[0].startswith("ERR") or errors.append("BOGUS accepted")
        expect(c.request("QUIT")[0] == "OK bye", "QUIT")
        c.close()
    except Exception as exc:  # noqa: BLE001 - report into the main thread
        errors.append(f"client {client_id}: {exc}")


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    cli = sys.argv[1]
    proc = subprocess.Popen(
        [cli, "serve", "-", "0", "--workers", "4", "--queue", "16"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        banner = proc.stdout.readline().strip()
        expect(banner.startswith("LISTENING "), f"banner: {banner!r}")
        port = int(banner.split()[1])

        # Phase 1: concurrent clients inserting and querying.
        errors = []
        threads = [
            threading.Thread(target=client_workload, args=(port, i, errors))
            for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(TIMEOUT_S)
        expect(not errors, "; ".join(errors))

        # Phase 2: publish and verify the inserted data is queryable.
        c = LineClient(port)
        epoch = c.request("PUBLISH")[0]
        expect(epoch.startswith("OK "), f"PUBLISH: {epoch}")
        rows = c.request("JOIN 0.05 0.3 0.3", has_rows=True)
        # All CLIENTS users share an identical hotspot object: every pair
        # matches, so the join returns at least C(CLIENTS, 2) pairs.
        n_pairs = int(rows[0].split()[1])
        expect(
            n_pairs >= CLIENTS * (CLIENTS - 1) // 2,
            f"expected >= {CLIENTS * (CLIENTS - 1) // 2} pairs, got {n_pairs}",
        )
        rows = c.request("PROBE smoke0 0.05 0.3 0.3", has_rows=True)
        expect(int(rows[0].split()[1]) >= CLIENTS - 1, f"PROBE rows: {rows[0]}")
        stats = c.request("STATS")[0]
        expect("publishes=" in stats, f"STATS: {stats}")

        # Phase 3: graceful shutdown.
        expect(c.request("SHUTDOWN")[0] == "OK shutting down", "SHUTDOWN")
        c.close()
        code = proc.wait(timeout=TIMEOUT_S)
        expect(code == 0, f"server exit code {code}")
    except Exception as exc:  # noqa: BLE001
        proc.kill()
        proc.wait()
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    print(f"server smoke passed: {CLIENTS} concurrent clients, "
          "publish visibility, graceful shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
