#!/usr/bin/env bash
# Runs the full paper-reproduction benchmark suite and records the output.
# Usage: scripts/run_benches.sh [build_dir] [output_file]
set -u

BUILD_DIR="${1:-build}"
OUTPUT="${2:-bench_output.txt}"

{
  echo "=== stps benchmark suite ($(date -u +%Y-%m-%dT%H:%M:%SZ)) ==="
  for b in "$BUILD_DIR"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo
    echo "### $(basename "$b")"
    "$b"
  done
} 2>&1 | tee "$OUTPUT"
