#!/usr/bin/env bash
# Builds the suite with AddressSanitizer + UndefinedBehaviorSanitizer and
# runs the full test suite. The CSR token arena and the span-based object
# docs make every verification kernel read through raw pointers into one
# big buffer — ASan catches any off-by-one in the arena offsets or a span
# outliving its database, UBSan catches overflow in the filter bounds.
# Usage: scripts/run_asan_tests.sh [build_dir]
set -eu

BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." -DSTPS_ASAN=ON
cmake --build "$BUILD_DIR" -j

# halt_on_error so CI fails fast; detect_leaks catches forgotten arenas in
# the builders; UBSan prints stacks for every report.
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1${ASAN_OPTIONS:+ $ASAN_OPTIONS}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1${UBSAN_OPTIONS:+ $UBSAN_OPTIONS}"

cd "$BUILD_DIR"
ctest --output-on-failure
