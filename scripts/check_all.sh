#!/usr/bin/env bash
# One-stop pre-merge gate: tier-1 build + full test suite, then both
# sanitizer configurations. Each stage uses its own build directory, so a
# warm tier-1 build is reused across runs.
# Usage: scripts/check_all.sh
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

echo "=== tier-1: Release build + full ctest ==="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j
(cd "$ROOT/build" && ctest --output-on-failure)

echo "=== bench smoke: tiny-scale runs + baseline sanity ==="
# --smoke runs prove the drivers execute and their internal checksums
# agree; the compare step keeps the committed baselines parseable and
# holds the spatial bench to its acceptance floor. Full-scale regression
# diffs (old vs new artifact, >10% gate) are run when regenerating:
#   scripts/compare_bench.py BENCH_spatial.json /tmp/new.json
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cmake --build "$ROOT/build" -j --target bench_spatial bench_kernels bench_sketch bench_planner
"$ROOT/build/bench/bench_spatial" --smoke "$SMOKE_DIR/spatial.json"
"$ROOT/build/bench/bench_kernels" --smoke "$SMOKE_DIR/kernels.json"
"$ROOT/build/bench/bench_sketch" --smoke "$SMOKE_DIR/sketch.json"
"$ROOT/build/bench/bench_planner" --smoke "$SMOKE_DIR/planner.json"
python3 "$ROOT/scripts/compare_bench.py" --require 'high_density_speedup>=1.5' \
    "$ROOT/BENCH_spatial.json" "$ROOT/BENCH_spatial.json"
python3 "$ROOT/scripts/compare_bench.py" \
    --require 'low_similarity_workload_speedup>=1.0' \
    "$ROOT/BENCH_kernels.json" "$ROOT/BENCH_kernels.json"
# The sketch gates are work counters (exact on any machine): sketch
# verifications must undercut brute force >= 3x at the largest sweep
# point and grow sub-quadratically in the user count.
python3 "$ROOT/scripts/compare_bench.py" \
    --require 'verify_reduction_at_max>=3' \
    --require 'candidate_growth_exponent<=1.95' \
    "$ROOT/BENCH_sketch.json" "$ROOT/BENCH_sketch.json"
# Planner gates: kAuto within 25% of the best static plan (geomean) and
# no slower than always picking the static default.
python3 "$ROOT/scripts/compare_bench.py" \
    --require 'planner_regret_vs_oracle<=1.25' \
    --require 'planner_beats_static_default>=1.0' \
    "$ROOT/BENCH_planner.json" "$ROOT/BENCH_planner.json"

echo "=== snapshot robustness: fuzz + mmap differential + io bench ==="
# Bit-flip/truncation/trailing-garbage corruption fuzz, heap-vs-mapped
# differential joins, sharded-join determinism, and the binary round
# trips; then the io bench smoke (cold-open + paged joins, internal
# checksums abort on any divergence) and the committed baseline's
# mmap-open gate.
(cd "$ROOT/build" && \
     ctest --output-on-failure \
         -R 'snapshot_fuzz|mapped_differential|sharded_join|binary_test')
cmake --build "$ROOT/build" -j --target bench_io
"$ROOT/build/bench/bench_io" --smoke "$SMOKE_DIR/io.json"
python3 "$ROOT/scripts/compare_bench.py" \
    --require 'mapped_open_speedup>=10' \
    --require 'sharded_checksum_match>=1.0' \
    "$ROOT/BENCH_io.json" "$ROOT/BENCH_io.json"

echo "=== update fuzz + server smoke ==="
# The differential insert/delete fuzz (snapshot vs rebuild-from-scratch
# oracle across every join/top-k variant), the delta-vs-full publish
# differential, and the live server end to end: concurrent socket
# clients, publish visibility, graceful shutdown.
(cd "$ROOT/build" && \
     ctest --output-on-failure -R 'update_test|delta_publish_test|server_test')
# Delta publish gates: splicing unchanged per-user state must beat a full
# rebuild >= 10x at the 1%-dirty point, and the bench's inline
# delta-vs-full checksum comparison must have matched on every round.
cmake --build "$ROOT/build" -j --target bench_update
"$ROOT/build/bench/bench_update" --smoke "$SMOKE_DIR/update.json"
python3 "$ROOT/scripts/compare_bench.py" \
    --require 'delta_publish_speedup>=10' \
    --require 'delta_full_checksum_match>=1.0' \
    "$ROOT/BENCH_update.json" "$ROOT/BENCH_update.json"
cmake --build "$ROOT/build" -j --target stps_cli
python3 "$ROOT/scripts/server_smoke.py" "$ROOT/build/tools/stps_cli"

echo "=== ASan + UBSan ==="
"$ROOT/scripts/run_asan_tests.sh" "$ROOT/build-asan"

echo "=== TSan ==="
"$ROOT/scripts/run_tsan_tests.sh" "$ROOT/build-tsan"

echo "=== UBSan: boundary-adversarial oracle suite ==="
cmake -B "$ROOT/build-ubsan" -S "$ROOT" -DSTPS_UBSAN=ON
cmake --build "$ROOT/build-ubsan" -j
(cd "$ROOT/build-ubsan" && \
     UBSAN_OPTIONS=print_stacktrace=1 \
     ctest --output-on-failure \
         -R 'boundary_oracle|predicates|sketch|snapshot_fuzz|mapped_differential|sharded_join')

echo "=== all checks passed ==="
