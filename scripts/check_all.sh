#!/usr/bin/env bash
# One-stop pre-merge gate: tier-1 build + full test suite, then both
# sanitizer configurations. Each stage uses its own build directory, so a
# warm tier-1 build is reused across runs.
# Usage: scripts/check_all.sh
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

echo "=== tier-1: Release build + full ctest ==="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j
(cd "$ROOT/build" && ctest --output-on-failure)

echo "=== ASan + UBSan ==="
"$ROOT/scripts/run_asan_tests.sh" "$ROOT/build-asan"

echo "=== TSan ==="
"$ROOT/scripts/run_tsan_tests.sh" "$ROOT/build-tsan"

echo "=== UBSan: boundary-adversarial oracle suite ==="
cmake -B "$ROOT/build-ubsan" -S "$ROOT" -DSTPS_UBSAN=ON
cmake --build "$ROOT/build-ubsan" -j
(cd "$ROOT/build-ubsan" && \
     UBSAN_OPTIONS=print_stacktrace=1 \
     ctest --output-on-failure -R 'boundary_oracle|predicates')

echo "=== all checks passed ==="
