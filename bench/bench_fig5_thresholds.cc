// Reproduces Figure 5: execution time under varying similarity
// thresholds. For each dataset, one parameter is swept while the other
// two stay at the dataset defaults. The paper's headline finding is that
// eps_loc dominates: once the spatial threshold reaches metropolitan
// scale, most objects fall into adjacent cells and the filter-based
// algorithms lose their advantage (S-PPJ-D peaks hardest).
//
// Usage: bench_fig5_thresholds [num_users]

#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using stps::DatasetKind;
using stps::JoinAlgorithm;
using stps::ObjectDatabase;
using stps::STPSQuery;

void RunSweep(const ObjectDatabase& db, const std::string& label,
              const std::vector<STPSQuery>& queries,
              const std::vector<double>& values) {
  std::printf("  vary %-8s %10s %10s %10s %10s %8s\n", label.c_str(),
              "S-PPJ-C", "S-PPJ-B", "S-PPJ-F", "S-PPJ-D", "|R|");
  for (size_t i = 0; i < queries.size(); ++i) {
    size_t result_size = 0;
    const double c = stps::bench::TimeJoin(db, queries[i],
                                           JoinAlgorithm::kSPPJC, 128,
                                           nullptr);
    const double b = stps::bench::TimeJoin(db, queries[i],
                                           JoinAlgorithm::kSPPJB, 128,
                                           nullptr);
    const double f = stps::bench::TimeJoin(db, queries[i],
                                           JoinAlgorithm::kSPPJF, 128,
                                           &result_size);
    const double d = stps::bench::TimeJoin(db, queries[i],
                                           JoinAlgorithm::kSPPJD, 128,
                                           nullptr);
    std::printf("  %10.4g %10.1f %10.1f %10.1f %10.1f %8zu\n", values[i], c,
                b, f, d, result_size);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;
  const size_t num_users = ArgSize(argc, argv, 1, 400);

  std::printf("Figure 5: effect of similarity thresholds (time in ms, %zu "
              "users)\n",
              num_users);
  for (const DatasetKind kind : AllKinds()) {
    const ObjectDatabase& db = GetDataset(kind, num_users);
    const STPSQuery defaults = DefaultQuery(kind);
    std::printf("\n%s (defaults eps_loc=%g eps_doc=%g eps_u=%g)\n",
                DatasetKindName(kind), defaults.eps_loc, defaults.eps_doc,
                defaults.eps_u);

    {  // eps_loc sweep — the dominant parameter.
      const std::vector<double> values = {0.001, 0.002, 0.005, 0.01};
      std::vector<STPSQuery> queries;
      for (const double v : values) {
        STPSQuery q = defaults;
        q.eps_loc = v;
        queries.push_back(q);
      }
      RunSweep(db, "eps_loc", queries, values);
    }
    {  // eps_doc sweep.
      std::vector<double> values;
      for (const double delta : {-0.1, 0.0, 0.1, 0.2}) {
        values.push_back(defaults.eps_doc + delta);
      }
      std::vector<STPSQuery> queries;
      for (const double v : values) {
        STPSQuery q = defaults;
        q.eps_doc = v;
        queries.push_back(q);
      }
      RunSweep(db, "eps_doc", queries, values);
    }
    {  // eps_u sweep.
      std::vector<double> values;
      for (const double delta : {-0.1, 0.0, 0.1, 0.2}) {
        values.push_back(defaults.eps_u + delta);
      }
      std::vector<STPSQuery> queries;
      for (const double v : values) {
        STPSQuery q = defaults;
        q.eps_u = v;
        queries.push_back(q);
      }
      RunSweep(db, "eps_u", queries, values);
    }
  }
  std::printf("\npaper shape: times rise sharply with eps_loc; S-PPJ-F "
              "flattest; S-PPJ-D peaks at large eps_loc.\n");
  return 0;
}
