// Ablation A5: S-PPJ-D under different data partitionings — STR R-tree
// leaves (the paper's choice) vs. PR-quadtree leaves (the alternative
// studied by Rao et al., which the paper cites) — against the S-PPJ-F
// grid as the reference. Shows how much of S-PPJ-D's gap to S-PPJ-F is
// the partitioning's mismatch with eps_loc vs. the scheme itself.
//
// Usage: bench_ablation_partitioning [num_users]

#include "bench_util.h"
#include "core/sppj_d.h"

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;
  const size_t num_users = ArgSize(argc, argv, 1, 400);

  std::printf("Ablation A5: S-PPJ-D partitioning backends (ms, %zu users, "
              "capacity 128)\n\n",
              num_users);
  std::printf("%-14s %12s %12s %12s %8s\n", "", "R-tree", "quadtree",
              "S-PPJ-F", "|R|");
  for (const DatasetKind kind : AllKinds()) {
    const ObjectDatabase& db = GetDataset(kind, num_users);
    const STPSQuery query = DefaultQuery(kind);
    size_t result_size = 0;

    SPPJDOptions rtree;
    rtree.partitioning = PartitioningScheme::kRTree;
    Timer rtree_timer;
    result_size = SPPJD(db, query, rtree).size();
    const double rtree_ms = rtree_timer.ElapsedMillis();

    SPPJDOptions quad;
    quad.partitioning = PartitioningScheme::kQuadTree;
    Timer quad_timer;
    SPPJD(db, query, quad);
    const double quad_ms = quad_timer.ElapsedMillis();

    const double f_ms =
        TimeJoin(db, query, JoinAlgorithm::kSPPJF, 128, nullptr);
    std::printf("%-14s %12.1f %12.1f %12.1f %8zu\n", DatasetKindName(kind),
                rtree_ms, quad_ms, f_ms, result_size);
  }
  std::printf("\nexpected: both data-driven partitionings trail the "
              "eps_loc-matched grid of S-PPJ-F; their relative order "
              "depends on data skew (quadtree splits adapt to density, "
              "R-tree leaves balance cardinality).\n");
  return 0;
}
