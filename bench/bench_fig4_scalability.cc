// Reproduces Figure 4: STPSJoin execution time vs. dataset size (number
// of users) for S-PPJ-C, S-PPJ-B, S-PPJ-F and S-PPJ-D on all three
// dataset regimes, at each dataset's default thresholds
// (GeoText .001/.3/.3, Flickr .001/.6/.6, Twitter .001/.4/.4).
//
// Expected shape (paper): S-PPJ-F fastest by orders of magnitude on every
// dataset and size; S-PPJ-B consistently below S-PPJ-C; S-PPJ-D between
// S-PPJ-B and S-PPJ-F.
//
// Usage: bench_fig4_scalability [max_users]  (sweep doubles up to this)

#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;
  const size_t max_users = ArgSize(argc, argv, 1, 1000);
  std::vector<size_t> sweep;
  for (size_t n = 125; n <= max_users; n *= 2) sweep.push_back(n);

  std::printf("Figure 4: scalability (time in ms; result size in "
              "parentheses)\n");
  for (const DatasetKind kind : AllKinds()) {
    const STPSQuery query = DefaultQuery(kind);
    std::printf("\n%s  (eps_loc=%g, eps_doc=%g, eps_u=%g)\n",
                DatasetKindName(kind), query.eps_loc, query.eps_doc,
                query.eps_u);
    std::printf("%8s %12s %12s %12s %12s %8s\n", "users", "S-PPJ-C",
                "S-PPJ-B", "S-PPJ-F", "S-PPJ-D", "|R|");
    for (const size_t n : sweep) {
      const ObjectDatabase& db = GetDataset(kind, n);
      size_t result_size = 0;
      const double c =
          TimeJoin(db, query, JoinAlgorithm::kSPPJC, 128, nullptr);
      const double b =
          TimeJoin(db, query, JoinAlgorithm::kSPPJB, 128, nullptr);
      const double f =
          TimeJoin(db, query, JoinAlgorithm::kSPPJF, 128, &result_size);
      const double d =
          TimeJoin(db, query, JoinAlgorithm::kSPPJD, 128, nullptr);
      std::printf("%8zu %12.1f %12.1f %12.1f %12.1f %8zu\n", n, c, b, f, d,
                  result_size);
    }
  }
  std::printf("\npaper shape: F << D < B < C, gaps of 10-1000x.\n");
  return 0;
}
