// Ablation A3: sigma vs. Hausdorff distance as a point-set similarity
// measure. The paper (Section 2.2) argues that Hausdorff — a maximum-
// discrepancy measure used by the closest related work (Adelfio et al.) —
// cannot capture *partial* similarity: one stray object ruins an
// otherwise near-identical pair. This driver quantifies the claim by
// comparing the two top-k rankings on the same datasets and reporting
// their overlap, plus the Hausdorff distances of the sigma-top pairs.
//
// Usage: bench_ablation_hausdorff [num_users]

#include <algorithm>

#include "bench_util.h"
#include "core/hausdorff.h"

namespace {

size_t Overlap(const std::vector<stps::ScoredUserPair>& a,
               const std::vector<stps::ScoredUserPair>& b) {
  size_t shared = 0;
  for (const auto& x : a) {
    for (const auto& y : b) {
      if (x.a == y.a && x.b == y.b) {
        ++shared;
        break;
      }
    }
  }
  return shared;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;
  const size_t num_users = ArgSize(argc, argv, 1, 250);

  std::printf("Ablation A3: sigma (spatio-textual, partial) vs. Hausdorff "
              "(spatial, max-discrepancy), %zu users\n\n",
              num_users);
  for (const DatasetKind kind : AllKinds()) {
    const ObjectDatabase& db = GetDataset(kind, num_users);
    const STPSQuery defaults = DefaultQuery(kind);
    std::printf("%s\n", DatasetKindName(kind));
    for (const size_t k : {5, 10, 25}) {
      const TopKQuery query{defaults.eps_loc, defaults.eps_doc, k};
      const auto by_sigma = RunTopKSTPSJoin(db, query, TopKAlgorithm::kP);
      const auto by_hausdorff = HausdorffTopK(db, k);
      const size_t shared = Overlap(by_sigma, by_hausdorff);
      // How badly does Hausdorff score the sigma-best pairs?
      double worst_h = 0.0;
      for (const auto& pair : by_sigma) {
        worst_h = std::max(worst_h,
                           HausdorffDistance(db.UserObjects(pair.a),
                                             db.UserObjects(pair.b)));
      }
      std::printf("  k=%-3zu ranking overlap %zu/%zu; max Hausdorff among "
                  "sigma-top pairs: %.4f (vs eps_loc=%.4f)\n",
                  k, shared, by_sigma.size(), worst_h, defaults.eps_loc);
    }
  }
  std::printf("\nexpected: low overlap, and sigma-top pairs with Hausdorff "
              "distances orders of magnitude above eps_loc — partially\n"
              "similar users contain at least one distant object, which "
              "Hausdorff punishes and sigma tolerates.\n");
  return 0;
}
