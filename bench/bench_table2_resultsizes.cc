// Reproduces Table 2: mean (stddev) of STPSJoin result-set sizes across
// the scalability configurations (Figure 4's size sweep at default
// thresholds) and the tuning configurations (Figure 5's threshold
// sweeps). The paper reports the Flickr regime producing by far the
// largest and most variable result sets — near-duplicate POI tags make
// whole user pairs similar.
//
// Usage: bench_table2_resultsizes [num_users]

#include <vector>

#include "bench_util.h"
#include "common/stats.h"

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;
  const size_t base_users = ArgSize(argc, argv, 1, 400);

  std::printf("Table 2: result-set sizes, mean (stddev)\n\n");
  std::printf("%-14s %-20s %-20s\n", "", "Scalability", "Tuning");
  for (const DatasetKind kind : AllKinds()) {
    // Scalability configurations: default thresholds, varying sizes.
    RunningStats scalability;
    for (size_t n = base_users / 4; n <= base_users; n *= 2) {
      if (n == 0) continue;
      const ObjectDatabase& db = GetDataset(kind, n);
      scalability.Add(static_cast<double>(
          RunSTPSJoin(db, DefaultQuery(kind)).size()));
    }
    // Tuning configurations: the Figure 5 threshold grid at fixed size.
    RunningStats tuning;
    const ObjectDatabase& db = GetDataset(kind, base_users);
    const STPSQuery defaults = DefaultQuery(kind);
    for (const double eps_loc : {0.001, 0.002, 0.005, 0.01}) {
      STPSQuery q = defaults;
      q.eps_loc = eps_loc;
      tuning.Add(static_cast<double>(RunSTPSJoin(db, q).size()));
    }
    for (const double delta : {-0.1, 0.1, 0.2}) {
      STPSQuery q = defaults;
      q.eps_doc = defaults.eps_doc + delta;
      tuning.Add(static_cast<double>(RunSTPSJoin(db, q).size()));
      q = defaults;
      q.eps_u = defaults.eps_u + delta;
      tuning.Add(static_cast<double>(RunSTPSJoin(db, q).size()));
    }
    std::printf("%-14s %8.2f (%8.2f) %8.2f (%8.2f)\n", DatasetKindName(kind),
                scalability.Mean(), scalability.StdDev(), tuning.Mean(),
                tuning.StdDev());
  }
  std::printf("\npaper: GeoText 27.0 (8.5) / 18.0 (36.9); Flickr 54.2 "
              "(46.2) / 326.0 (633.9); Twitter 13.5 (6.5) / 14.1 (10.0)\n"
              "shape: Flickr largest and most variable.\n");
  return 0;
}
