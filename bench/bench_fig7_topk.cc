// Reproduces Figure 7: top-k STPSJoin execution time vs. k for
// TOPK-S-PPJ-F, TOPK-S-PPJ-S and TOPK-S-PPJ-P.
//
// Expected shape (paper): P best on GeoText/Twitter (low-similarity data
// where the Lemma 2 prefilter bites); F best on Flickr (high-similarity
// data defeats the extra filter); S consistently worst — its ordering
// heuristic does not pay for its overhead.
//
// Usage: bench_fig7_topk [num_users]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;
  const size_t num_users = ArgSize(argc, argv, 1, 500);
  const size_t ks[] = {5, 10, 25, 50, 100};

  std::printf("Figure 7: top-k STPSJoin time vs. k (ms, %zu users)\n",
              num_users);
  for (const DatasetKind kind : AllKinds()) {
    const ObjectDatabase& db = GetDataset(kind, num_users);
    const STPSQuery defaults = DefaultQuery(kind);
    std::printf("\n%s (eps_loc=%g, eps_doc=%g)\n", DatasetKindName(kind),
                defaults.eps_loc, defaults.eps_doc);
    std::printf("%8s %14s %14s %14s\n", "k", "TOPK-S-PPJ-F", "TOPK-S-PPJ-S",
                "TOPK-S-PPJ-P");
    for (const size_t k : ks) {
      const TopKQuery query{defaults.eps_loc, defaults.eps_doc, k};
      const double f = TimeTopK(db, query, TopKAlgorithm::kF, nullptr);
      const double s = TimeTopK(db, query, TopKAlgorithm::kS, nullptr);
      const double p = TimeTopK(db, query, TopKAlgorithm::kP, nullptr);
      std::printf("%8zu %14.1f %14.1f %14.1f\n", k, f, s, p);
    }
  }
  std::printf("\npaper shape: P <= F << S on sparse data; F <= P << S on "
              "FlickrLike.\n");
  return 0;
}
