// Planner-regret benchmark: how close does kAuto get to the best static
// choice, and does it beat the static default (S-PPJ-F)?
//
// Sweeps three dataset regimes (GeoText-like sparse country extent,
// CheckinSparse near-linear close-pair growth, Flickr-like POI hotspots)
// at two spatial densities each (the paper's default eps_loc and 4x
// looser). Per configuration:
//
//   * every static variant (S-PPJ-C/B/F/D) runs twice, best-of-two; the
//     minimum over variants is the oracle, S-PPJ-F's time is the static
//     default. These runs also warm PlannerFeedback's per-shape EWMAs —
//     by design, since explicit runs feed the planner too.
//   * kAuto runs three times; the converged time is the best of runs 2-3
//     (run 1 may re-plan once as the feedback settles).
//
// Brute force is omitted from the oracle: it is dominated by >10x at
// every sweep point here and would triple the wall-clock.
//
// Every run's result list is checksummed against the first variant's —
// all plans are exact, so any divergence aborts the bench.
//
// Summary gates (committed in BENCH_planner.json, held by check_all.sh):
//   planner_regret_vs_oracle     geomean over configs of auto/oracle,
//                                required <= 1.25
//   planner_beats_static_default geomean of default/auto, required >= 1.0
//
// Usage: bench_planner [--smoke] [output.json] (default BENCH_planner.json)

#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/join_stats.h"
#include "core/stpsjoin.h"
#include "planner/feedback.h"

namespace stps::bench {
namespace {

uint64_t ResultChecksum(const std::vector<ScoredUserPair>& result) {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (const ScoredUserPair& p : result) {
    uint64_t x = (static_cast<uint64_t>(p.a) << 32) | p.b;
    x ^= std::bit_cast<uint64_t>(p.score) + 0x9E3779B97F4A7C15ull +
         (h << 6) + (h >> 2);
    h ^= x * 0xBF58476D1CE4E5B9ull;
    h = (h << 13) | (h >> 51);
  }
  return h ^ result.size();
}

struct ConfigRow {
  const char* dataset = "";
  double eps_loc = 0;
  double eps_doc = 0;
  double eps_u = 0;
  uint64_t matches = 0;
  double default_ms = 0;  // static S-PPJ-F, best of 2
  double oracle_ms = 0;   // min over static variants, best of 2 each
  double auto_ms = 0;     // kAuto, best of converged runs 2-3
  std::string oracle_algorithm;
};

constexpr int kThreadBudget = 4;

// One timed run through the umbrella; aborts on result divergence.
double TimedRun(const ObjectDatabase& db, const STPSQuery& query,
                JoinAlgorithm algorithm, uint64_t* checksum,
                uint64_t* matches) {
  JoinOptions options;
  options.algorithm = algorithm;
  JoinStats stats;
  Timer timer;
  const auto result = RunSTPSJoin(db, query, options, &stats);
  const double ms = timer.ElapsedMillis();
  RecordJoinStats(JoinAlgorithmName(algorithm), stats);
  const uint64_t sum = ResultChecksum(result);
  if (*checksum == 0) {
    *checksum = sum;
    *matches = result.size();
  } else if (sum != *checksum) {
    std::fprintf(stderr, "checksum mismatch: %s returned %zu matches\n",
                 std::string(JoinAlgorithmName(algorithm)).c_str(),
                 result.size());
    std::abort();
  }
  return ms;
}

ConfigRow RunConfig(DatasetKind kind, size_t users, double eps_loc_scale) {
  const ObjectDatabase& db = GetDataset(kind, users);
  STPSQuery query = DefaultQuery(kind);
  query.eps_loc *= eps_loc_scale;
  query.parallel.num_threads = kThreadBudget;

  ConfigRow row;
  row.dataset = DatasetKindName(kind);
  row.eps_loc = query.eps_loc;
  row.eps_doc = query.eps_doc;
  row.eps_u = query.eps_u;

  uint64_t checksum = 0;
  row.oracle_ms = 1e300;
  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kSPPJF, JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB,
        JoinAlgorithm::kSPPJD}) {
    double best = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      best = std::min(
          best, TimedRun(db, query, algorithm, &checksum, &row.matches));
    }
    if (algorithm == JoinAlgorithm::kSPPJF) row.default_ms = best;
    if (best < row.oracle_ms) {
      row.oracle_ms = best;
      row.oracle_algorithm = JoinAlgorithmName(algorithm);
    }
  }

  row.auto_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const double ms =
        TimedRun(db, query, JoinAlgorithm::kAuto, &checksum, &row.matches);
    if (rep >= 1) row.auto_ms = std::min(row.auto_ms, ms);
  }
  return row;
}

double Geomean(const std::vector<double>& values) {
  double log_sum = 0;
  for (const double v : values) log_sum += std::log(std::max(v, 1e-12));
  return values.empty() ? 1.0 : std::exp(log_sum / values.size());
}

}  // namespace
}  // namespace stps::bench

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;

  bool smoke = false;
  std::string out_path = "BENCH_planner.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const size_t users = smoke ? 120 : 700;
  // Fresh process, fresh coefficients: the oracle sweep below is the only
  // calibration kAuto gets.
  PlannerFeedback::Global().Reset();

  const std::vector<DatasetKind> kinds = {DatasetKind::kGeoTextLike,
                                          DatasetKind::kCheckinSparse,
                                          DatasetKind::kFlickrLike};
  const std::vector<double> density_scales = {1.0, 4.0};

  std::printf("%14s %9s %8s %7s %9s %11s %10s %9s %7s %8s\n", "dataset",
              "eps_loc", "eps_doc", "eps_u", "matches", "default_ms",
              "oracle_ms", "auto_ms", "regret", "vs_def");

  std::vector<ConfigRow> rows;
  std::vector<double> regrets;
  std::vector<double> vs_default;
  for (const DatasetKind kind : kinds) {
    for (const double scale : density_scales) {
      rows.push_back(RunConfig(kind, users, scale));
      const ConfigRow& r = rows.back();
      const double regret = r.auto_ms / std::max(r.oracle_ms, 1e-6);
      const double beats = r.default_ms / std::max(r.auto_ms, 1e-6);
      regrets.push_back(regret);
      vs_default.push_back(beats);
      std::printf("%14s %9.4f %8.2f %7.2f %9" PRIu64
                  " %11.1f %10.1f %9.1f %7.2f %8.2f\n",
                  r.dataset, r.eps_loc, r.eps_doc, r.eps_u, r.matches,
                  r.default_ms, r.oracle_ms, r.auto_ms, regret, beats);
    }
  }

  const double regret_geomean = Geomean(regrets);
  const double beats_geomean = Geomean(vs_default);

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"planner\",\n  \"users\": %zu,\n"
               "  \"thread_budget\": %d,\n  \"rows\": [\n",
               users, kThreadBudget);
  for (size_t i = 0; i < rows.size(); ++i) {
    const ConfigRow& r = rows[i];
    std::fprintf(json,
                 "%s    {\"dataset\": \"%s\", \"eps_loc\": %.4f, "
                 "\"eps_doc\": %.2f, \"eps_u\": %.2f, \"matches\": %" PRIu64
                 ", \"oracle_algorithm\": \"%s\", \"default_ms\": %.2f, "
                 "\"oracle_ms\": %.2f, \"auto_ms\": %.2f}",
                 i == 0 ? "" : ",\n", r.dataset, r.eps_loc, r.eps_doc,
                 r.eps_u, r.matches, r.oracle_algorithm.c_str(),
                 r.default_ms, r.oracle_ms, r.auto_ms);
  }
  std::fprintf(json,
               "\n  ],\n  \"planner_regret_vs_oracle\": %.3f,\n"
               "  \"planner_beats_static_default\": %.3f\n}\n",
               regret_geomean, beats_geomean);
  std::fclose(json);

  std::printf("\ngeomean regret vs oracle: %.3f (gate <= 1.25)\n"
              "geomean speedup vs static default: %.3f (gate >= 1.0)\n",
              regret_geomean, beats_geomean);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
