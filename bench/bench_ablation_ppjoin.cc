// Ablation A2: contribution of the PPJOIN filters (prefix-only ALL-PAIRS
// baseline vs. +positional vs. +suffix) on set-similarity self-joins.
// google-benchmark microbenchmark over synthetic Zipf token sets.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "text/token_set.h"
#include "textjoin/allpairs.h"
#include "textjoin/ppjoin.h"

namespace {

using stps::Rng;
using stps::TextJoinOptions;
using stps::TokenId;
using stps::TokenVector;
using stps::ZipfSampler;

std::vector<TokenVector> MakeRecords(size_t count, size_t vocabulary,
                                     size_t avg_tokens) {
  Rng rng(99);
  const ZipfSampler sampler(vocabulary, 0.9);
  std::vector<TokenVector> records(count);
  for (auto& rec : records) {
    const size_t n = 1 + rng.NextBelow(2 * avg_tokens);
    for (size_t i = 0; i < n; ++i) {
      rec.push_back(static_cast<TokenId>(sampler.Sample(rng)));
    }
    stps::NormalizeTokenSet(&rec);
  }
  return records;
}

void ConfigureJoin(benchmark::State& state, bool positional, bool suffix) {
  // range(0): record count; range(1): average tokens per record. Longer
  // records are where the positional/suffix filters earn their keep.
  const size_t avg_tokens = static_cast<size_t>(state.range(1));
  const auto records = MakeRecords(static_cast<size_t>(state.range(0)),
                                   avg_tokens >= 24 ? 600 : 2000,
                                   avg_tokens);
  TextJoinOptions options;
  options.threshold = avg_tokens >= 24 ? 0.8 : 0.6;
  options.positional_filter = positional;
  options.suffix_filter = suffix;
  size_t pairs = 0;
  for (auto _ : state) {
    pairs = PPJoinSelf(records, options).size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_AllPairs(benchmark::State& state) {
  ConfigureJoin(state, /*positional=*/false, /*suffix=*/false);
}

void BM_PPJoin(benchmark::State& state) {
  ConfigureJoin(state, /*positional=*/true, /*suffix=*/false);
}

void BM_PPJoinPlus(benchmark::State& state) {
  ConfigureJoin(state, /*positional=*/true, /*suffix=*/true);
}

}  // namespace

BENCHMARK(BM_AllPairs)
    ->Args({2000, 8})
    ->Args({8000, 8})
    ->Args({2000, 32})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PPJoin)
    ->Args({2000, 8})
    ->Args({8000, 8})
    ->Args({2000, 32})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PPJoinPlus)
    ->Args({2000, 8})
    ->Args({8000, 8})
    ->Args({2000, 32})
    ->Unit(benchmark::kMillisecond);
