// Candidate-growth benchmark for the sketch layer: sweeps the number of
// users on the CheckinSparse preset (city count scales with users, so
// the true close-pair graph grows near-linearly) and reports how many
// exact pair verifications each strategy performs:
//
//   brute_pairs       C(n, 2) — what brute force verifies
//   baseline_verified what S-PPJ-F's filter stage lets through
//   sketch_candidates what the band index generates (== verifications,
//                     since every sketch candidate is exactly verified)
//
// The gates are work counters, not wall-clock — exactly reproducible on
// any machine at any load:
//   verify_reduction_at_max   brute_pairs / sketch_candidates at the
//                             largest sweep point (regression gate >= 3)
//   candidate_growth_exponent log-log slope of sketch_candidates in n
//                             over the sweep (sub-quadratic gate < 2)
//
// Both runs must produce the identical match set — a positional checksum
// over (a, b, score-bits) guards the exactness contract; any mismatch
// aborts the bench.
//
// Usage: bench_sketch [--smoke] [output.json]  (default BENCH_sketch.json)

#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/join_stats.h"
#include "core/stpsjoin.h"

namespace stps::bench {
namespace {

// Order-sensitive checksum over the exact result list; both strategies
// return (a, b)-sorted pairs with bitwise-exact scores, so equality here
// means equality of the full result sets.
uint64_t ResultChecksum(const std::vector<ScoredUserPair>& result) {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (const ScoredUserPair& p : result) {
    uint64_t x = (static_cast<uint64_t>(p.a) << 32) | p.b;
    x ^= std::bit_cast<uint64_t>(p.score) + 0x9E3779B97F4A7C15ull +
         (h << 6) + (h >> 2);
    h ^= x * 0xBF58476D1CE4E5B9ull;
    h = (h << 13) | (h >> 51);
  }
  return h ^ result.size();
}

struct SweepRow {
  size_t users = 0;
  uint64_t brute_pairs = 0;
  uint64_t baseline_verified = 0;
  uint64_t sketch_candidates = 0;
  uint64_t sketch_rejections = 0;
  uint64_t matches = 0;
  double baseline_ms = 0;
  double sketch_ms = 0;
};

SweepRow RunSweepPoint(size_t users) {
  SweepRow row;
  row.users = users;
  const ObjectDatabase& db = GetDataset(DatasetKind::kCheckinSparse, users);
  STPSQuery query = DefaultQuery(DatasetKind::kCheckinSparse);
  row.brute_pairs = static_cast<uint64_t>(users) * (users - 1) / 2;

  JoinStats baseline_stats;
  Timer baseline_timer;
  const auto baseline = RunSTPSJoin(db, query, {}, &baseline_stats);
  row.baseline_ms = baseline_timer.ElapsedMillis();
  row.baseline_verified = baseline_stats.pairs_verified;
  RecordJoinStats("S-PPJ-F", baseline_stats);

  query.sketch.enabled = true;
  JoinStats sketch_stats;
  Timer sketch_timer;
  const auto sketched = RunSTPSJoin(db, query, {}, &sketch_stats);
  row.sketch_ms = sketch_timer.ElapsedMillis();
  row.sketch_candidates = sketch_stats.sketch_candidate_pairs;
  row.sketch_rejections = sketch_stats.sketch_rejections;
  row.matches = sketched.size();
  RecordJoinStats("sketch", sketch_stats);

  if (ResultChecksum(baseline) != ResultChecksum(sketched)) {
    std::fprintf(stderr,
                 "checksum mismatch at %zu users: baseline %zu matches, "
                 "sketch %zu matches\n",
                 users, baseline.size(), sketched.size());
    std::abort();
  }
  return row;
}

}  // namespace
}  // namespace stps::bench

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;

  bool smoke = false;
  std::string out_path = "BENCH_sketch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  // Full scale quadruples the user count three times so the log-log
  // slope is measured across almost an order of magnitude; smoke scale
  // proves the paths run, agree, and emit well-formed JSON.
  const std::vector<size_t> sweep =
      smoke ? std::vector<size_t>{100, 200}
            : std::vector<size_t>{400, 800, 1600, 3200};

  std::printf("%8s %12s %14s %14s %12s %9s %10s %9s\n", "users",
              "brute_pairs", "baseline_verif", "sketch_cands", "rejections",
              "matches", "base_ms", "sk_ms");

  std::vector<SweepRow> rows;
  for (const size_t users : sweep) {
    rows.push_back(RunSweepPoint(users));
    const SweepRow& r = rows.back();
    std::printf("%8zu %12" PRIu64 " %14" PRIu64 " %14" PRIu64 " %12" PRIu64
                " %9" PRIu64 " %10.1f %9.1f\n",
                r.users, r.brute_pairs, r.baseline_verified,
                r.sketch_candidates, r.sketch_rejections, r.matches,
                r.baseline_ms, r.sketch_ms);
  }

  const SweepRow& last = rows.back();
  const double verify_reduction_at_max =
      static_cast<double>(last.brute_pairs) /
      static_cast<double>(std::max<uint64_t>(1, last.sketch_candidates));
  // Log-log slope of sketch candidates in users across the whole sweep;
  // brute force sits at exactly 2.0 on this axis.
  const double log_cands_lo = std::log(static_cast<double>(
      std::max<uint64_t>(1, rows.front().sketch_candidates)));
  const double log_cands_hi = std::log(
      static_cast<double>(std::max<uint64_t>(1, last.sketch_candidates)));
  const double candidate_growth_exponent =
      (log_cands_hi - log_cands_lo) /
      (std::log(static_cast<double>(last.users)) -
       std::log(static_cast<double>(rows.front().users)));

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"sketch\",\n  \"dataset\": "
               "\"CheckinSparse\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(json,
                 "%s    {\"users\": %zu, \"brute_pairs\": %" PRIu64
                 ", \"baseline_verified\": %" PRIu64
                 ", \"sketch_candidates\": %" PRIu64
                 ", \"sketch_rejections\": %" PRIu64 ", \"matches\": %" PRIu64
                 ", \"baseline_ms\": %.1f, \"sketch_ms\": %.1f}",
                 i == 0 ? "" : ",\n", r.users, r.brute_pairs,
                 r.baseline_verified, r.sketch_candidates,
                 r.sketch_rejections, r.matches, r.baseline_ms, r.sketch_ms);
  }
  std::fprintf(json,
               "\n  ],\n  \"verify_reduction_at_max\": %.2f,\n"
               "  \"candidate_growth_exponent\": %.3f\n}\n",
               verify_reduction_at_max, candidate_growth_exponent);
  std::fclose(json);

  std::printf("\nverify reduction vs brute force at %zu users: %.1fx "
              "(candidate growth exponent %.3f, brute force = 2.0)\n",
              last.users, verify_reduction_at_max,
              candidate_growth_exponent);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
