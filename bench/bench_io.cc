// Snapshot I/O benchmark: cold open and out-of-core join execution on
// the v3 arena format.
//
// Three ways to get a written database back:
//   heap_read_ms    ReadBinary — reads the whole file, verifies every
//                   section checksum plus the structural cross-checks
//                   (O(file) before the first query can run)
//   open_ms         MappedSnapshot::Open — mmap + header/table parse;
//                   O(1) in the file size, nothing is paged in yet
//   load_ms         MappedSnapshot::Load — borrowed-arena database on
//                   top of the mapping (O(objects + users) structural
//                   validation, payload paged on demand)
//
// The headline series `mapped_open_speedup` is heap_read over open+load
// at the largest sweep point: the factor by which mmap shortens the
// time from process start to a queryable database. It grows with the
// file, so the committed full-scale baseline gates it at >= 10.
//
// The join columns compare the same query on the heap and mapped
// databases (first query after open — the paged-in join) and the
// sharded driver at 1/2/8 shards on the mapped database. Every variant
// must produce the identical result list — a positional checksum over
// (a, b, score-bits) aborts the bench on any divergence, which is what
// makes `sharded_checksum_match` a trivially gateable 1.0.
//
// Usage: bench_io [--smoke] [output.json]  (default BENCH_io.json)

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/sharded_join.h"
#include "core/stpsjoin.h"
#include "io/binary.h"

namespace stps::bench {
namespace {

uint64_t ResultChecksum(const std::vector<ScoredUserPair>& result) {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (const ScoredUserPair& p : result) {
    uint64_t x = (static_cast<uint64_t>(p.a) << 32) | p.b;
    x ^= std::bit_cast<uint64_t>(p.score) + 0x9E3779B97F4A7C15ull +
         (h << 6) + (h >> 2);
    h ^= x * 0xBF58476D1CE4E5B9ull;
    h = (h << 13) | (h >> 51);
  }
  return h ^ result.size();
}

struct SweepRow {
  size_t users = 0;
  uint64_t file_bytes = 0;
  double write_ms = 0;
  double heap_read_ms = 0;
  double open_ms = 0;
  double load_ms = 0;
  double join_heap_ms = 0;
  double join_mapped_ms = 0;
  double join_shard1_ms = 0;
  double join_shard2_ms = 0;
  double join_shard8_ms = 0;
  uint64_t matches = 0;
};

SweepRow RunSweepPoint(size_t users, const std::string& path) {
  SweepRow row;
  row.users = users;
  const ObjectDatabase& db = GetDataset(DatasetKind::kCheckinSparse, users);
  const STPSQuery query = DefaultQuery(DatasetKind::kCheckinSparse);

  Timer write_timer;
  if (!WriteBinary(db, path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::abort();
  }
  row.write_ms = write_timer.ElapsedMillis();

  Timer heap_timer;
  Result<ObjectDatabase> heap = ReadBinary(path);
  row.heap_read_ms = heap_timer.ElapsedMillis();
  if (!heap.ok()) {
    std::fprintf(stderr, "heap read failed: %s\n",
                 heap.status().ToString().c_str());
    std::abort();
  }

  Timer open_timer;
  Result<MappedSnapshot> snapshot = MappedSnapshot::Open(path);
  row.open_ms = open_timer.ElapsedMillis();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "mmap open failed: %s\n",
                 snapshot.status().ToString().c_str());
    std::abort();
  }
  row.file_bytes = snapshot.value().file_size();

  Timer load_timer;
  Result<ObjectDatabase> mapped = snapshot.value().Load();
  row.load_ms = load_timer.ElapsedMillis();
  if (!mapped.ok()) {
    std::fprintf(stderr, "mapped load failed: %s\n",
                 mapped.status().ToString().c_str());
    std::abort();
  }

  // First query after each open: the heap database is fully resident,
  // the mapped one pages its arena in as the join touches it.
  JoinOptions options;
  options.algorithm = JoinAlgorithm::kSPPJF;
  Timer heap_join_timer;
  const auto heap_result = RunSTPSJoin(heap.value(), query, options);
  row.join_heap_ms = heap_join_timer.ElapsedMillis();
  Timer mapped_join_timer;
  const auto mapped_result = RunSTPSJoin(mapped.value(), query, options);
  row.join_mapped_ms = mapped_join_timer.ElapsedMillis();
  row.matches = mapped_result.size();

  const uint64_t reference = ResultChecksum(heap_result);
  if (ResultChecksum(mapped_result) != reference) {
    std::fprintf(stderr, "mapped join diverged at %zu users\n", users);
    std::abort();
  }

  const auto time_shards = [&](int shards, double* ms) {
    Timer timer;
    const auto result = ShardedSTPSJoin(mapped.value(), query, shards);
    *ms = timer.ElapsedMillis();
    if (ResultChecksum(result) != reference) {
      std::fprintf(stderr, "sharded join (%d shards) diverged at %zu users\n",
                   shards, users);
      std::abort();
    }
  };
  time_shards(1, &row.join_shard1_ms);
  time_shards(2, &row.join_shard2_ms);
  time_shards(8, &row.join_shard8_ms);

  std::remove(path.c_str());
  return row;
}

}  // namespace
}  // namespace stps::bench

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;

  bool smoke = false;
  std::string out_path = "BENCH_io.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const std::vector<size_t> sweep = smoke
                                        ? std::vector<size_t>{100, 200}
                                        : std::vector<size_t>{400, 1600, 3200};
  const std::string snapshot_path = out_path + ".tmp.stpsdb";

  std::printf("%8s %12s %9s %9s %8s %8s %9s %9s %9s %9s %9s\n", "users",
              "file_bytes", "write_ms", "heap_ms", "open_ms", "load_ms",
              "joinH_ms", "joinM_ms", "sh1_ms", "sh2_ms", "sh8_ms");

  std::vector<SweepRow> rows;
  for (const size_t users : sweep) {
    rows.push_back(RunSweepPoint(users, snapshot_path));
    const SweepRow& r = rows.back();
    std::printf("%8zu %12" PRIu64
                " %9.1f %9.1f %8.3f %8.3f %9.1f %9.1f %9.1f %9.1f %9.1f\n",
                r.users, r.file_bytes, r.write_ms, r.heap_read_ms, r.open_ms,
                r.load_ms, r.join_heap_ms, r.join_mapped_ms, r.join_shard1_ms,
                r.join_shard2_ms, r.join_shard8_ms);
  }

  const SweepRow& last = rows.back();
  const double mapped_open_ms = last.open_ms + last.load_ms;
  const double mapped_open_speedup =
      last.heap_read_ms / (mapped_open_ms > 0 ? mapped_open_ms : 1e-6);

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"io\",\n  \"dataset\": "
               "\"CheckinSparse\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(json,
                 "%s    {\"users\": %zu, \"file_bytes\": %" PRIu64
                 ", \"matches\": %" PRIu64
                 ", \"write_ms\": %.2f, \"heap_read_ms\": %.2f, "
                 "\"open_ms\": %.4f, \"load_ms\": %.4f, "
                 "\"join_heap_ms\": %.2f, \"join_mapped_ms\": %.2f, "
                 "\"join_shard1_ms\": %.2f, \"join_shard2_ms\": %.2f, "
                 "\"join_shard8_ms\": %.2f}",
                 i == 0 ? "" : ",\n", r.users, r.file_bytes, r.matches,
                 r.write_ms, r.heap_read_ms, r.open_ms, r.load_ms,
                 r.join_heap_ms, r.join_mapped_ms, r.join_shard1_ms,
                 r.join_shard2_ms, r.join_shard8_ms);
  }
  std::fprintf(json,
               "\n  ],\n  \"mapped_open_speedup\": %.2f,\n"
               "  \"sharded_checksum_match\": 1.0\n}\n",
               mapped_open_speedup);
  std::fclose(json);

  std::printf("\nmapped open+load vs verified heap read at %zu users: "
              "%.1fx faster (%.3f ms vs %.1f ms)\n",
              last.users, mapped_open_speedup, mapped_open_ms,
              last.heap_read_ms);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
