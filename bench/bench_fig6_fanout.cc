// Reproduces Figure 6: sensitivity of S-PPJ-D to the R-tree fanout.
// The paper finds no single best value but a usable band around 100-200;
// small fanouts explode the number of leaf partitions (and leaf-pair
// joins), very large ones degrade partition locality.
//
// Usage: bench_fig6_fanout [num_users]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;
  const size_t num_users = ArgSize(argc, argv, 1, 500);
  const int fanouts[] = {50, 100, 150, 200, 250};

  std::printf("Figure 6: S-PPJ-D execution time vs. R-tree fanout (ms, %zu "
              "users)\n\n",
              num_users);
  std::printf("%-12s", "fanout");
  for (const int f : fanouts) std::printf(" %10d", f);
  std::printf("\n");
  for (const DatasetKind kind : AllKinds()) {
    const ObjectDatabase& db = GetDataset(kind, num_users);
    const STPSQuery query = DefaultQuery(kind);
    std::printf("%-12s", DatasetKindName(kind));
    for (const int fanout : fanouts) {
      const double ms =
          TimeJoin(db, query, JoinAlgorithm::kSPPJD, fanout, nullptr);
      std::printf(" %10.1f", ms);
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: no universal winner; 100-200 is the usable "
              "band.\n");
  return 0;
}
