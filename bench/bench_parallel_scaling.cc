// Ablation A4: shared-memory scaling of the parallel S-PPJ-F (a step
// toward the paper's future-work distributed processing). Reports
// wall-clock time per thread count; on a multi-core host the speedup
// should track the thread count until the per-user work runs out.
//
// Usage: bench_parallel_scaling [num_users]

#include <thread>

#include "bench_util.h"
#include "core/sppj_f_parallel.h"

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;
  const size_t num_users = ArgSize(argc, argv, 1, 400);

  std::printf("Ablation A4: parallel S-PPJ-F scaling (%zu users; host has "
              "%u hardware threads)\n\n",
              num_users, std::thread::hardware_concurrency());
  std::printf("%-14s %10s %10s %10s %10s %8s\n", "", "1 thread", "2",
              "4", "8", "|R|");
  for (const DatasetKind kind : AllKinds()) {
    const ObjectDatabase& db = GetDataset(kind, num_users);
    STPSQuery query = DefaultQuery(kind);
    std::printf("%-14s", DatasetKindName(kind));
    size_t result_size = 0;
    for (const int threads : {1, 2, 4, 8}) {
      Timer timer;
      const auto result = SPPJFParallel(db, query, threads);
      result_size = result.size();
      std::printf(" %10.1f", timer.ElapsedMillis());
    }
    std::printf(" %8zu\n", result_size);
  }
  return 0;
}
