// Ablation A4: shared-memory scaling of the pool-parallel join drivers
// (a step toward the paper's future-work distributed processing).
//
// Part 1 pits the work-stealing ThreadPool S-PPJ-F against the old
// hand-rolled std::thread implementation it replaced — the pool must be
// no slower at every thread count. Part 2 reports pool scaling for every
// parallel driver (S-PPJ-B/C/D/F and TOPK-S-PPJ-F); on a multi-core host
// the speedup should track the thread count until the per-user work runs
// out. The per-stage filter counters print at exit via the bench_util
// stats registry.
//
// Usage: bench_parallel_scaling [num_users]

#include <algorithm>
#include <thread>

#include "bench_util.h"
#include "core/sppj_b.h"
#include "core/sppj_c.h"
#include "core/sppj_d.h"
#include "core/sppj_f_parallel.h"
#include "core/topk.h"

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;
  const size_t num_users = ArgSize(argc, argv, 1, 400);
  const int thread_counts[] = {1, 2, 4, 8};
  constexpr int kRepeats = 3;

  std::printf("Ablation A4: parallel join scaling (%zu users; host has "
              "%u hardware threads)\n\n",
              num_users, std::thread::hardware_concurrency());

  std::printf("Pool vs hand-rolled S-PPJ-F (ms, best of %d)\n", kRepeats);
  std::printf("%-14s %-11s %10s %10s %10s %10s %8s\n", "", "", "1 thread",
              "2", "4", "8", "|R|");
  for (const DatasetKind kind : AllKinds()) {
    const ObjectDatabase& db = GetDataset(kind, num_users);
    const STPSQuery query = DefaultQuery(kind);
    // Warm caches so the first timed configuration isn't penalised.
    SPPJFParallel(db, query, ParallelOptions{1, 0});
    size_t pool_size = 0, hand_size = 0;
    double pool_ms[4], hand_ms[4];
    // Interleave the two implementations and keep the best repeat —
    // the host is shared, so single measurements are noisy.
    for (int i = 0; i < 4; ++i) pool_ms[i] = hand_ms[i] = 1e300;
    for (int rep = 0; rep < kRepeats; ++rep) {
      for (int i = 0; i < 4; ++i) {
        const int threads = thread_counts[i];
        Timer pool_timer;
        pool_size =
            SPPJFParallel(db, query, ParallelOptions{threads, 0}).size();
        pool_ms[i] = std::min(pool_ms[i], pool_timer.ElapsedMillis());
        Timer hand_timer;
        hand_size = SPPJFParallelHandRolled(db, query, threads).size();
        hand_ms[i] = std::min(hand_ms[i], hand_timer.ElapsedMillis());
      }
    }
    std::printf("%-14s %-11s", DatasetKindName(kind), "pool");
    for (const double ms : pool_ms) std::printf(" %10.1f", ms);
    std::printf(" %8zu\n", pool_size);
    std::printf("%-14s %-11s", "", "hand-rolled");
    for (const double ms : hand_ms) std::printf(" %10.1f", ms);
    std::printf(" %8zu\n", hand_size);
  }

  std::printf("\nPool scaling per algorithm (ms; GeoText-like preset)\n");
  std::printf("%-14s %10s %10s %10s %10s %8s\n", "", "1 thread", "2", "4",
              "8", "|R|");
  const ObjectDatabase& db = GetDataset(DatasetKind::kGeoTextLike, num_users);
  const STPSQuery query = DefaultQuery(DatasetKind::kGeoTextLike);
  const auto time_variant = [&](const char* name, auto&& run) {
    std::printf("%-14s", name);
    size_t result_size = 0;
    for (const int threads : thread_counts) {
      JoinStats stats;
      Timer timer;
      const auto result = run(ParallelOptions{threads, 0}, &stats);
      result_size = result.size();
      std::printf(" %10.1f", timer.ElapsedMillis());
      RecordJoinStats(name, stats);
    }
    std::printf(" %8zu\n", result_size);
  };
  time_variant("S-PPJ-B", [&](const ParallelOptions& p, JoinStats* s) {
    return SPPJBParallel(db, query, p, s);
  });
  time_variant("S-PPJ-C", [&](const ParallelOptions& p, JoinStats* s) {
    return SPPJCParallel(db, query, p, s);
  });
  time_variant("S-PPJ-D", [&](const ParallelOptions& p, JoinStats* s) {
    return SPPJDParallel(db, query, SPPJDOptions{}, p, s);
  });
  time_variant("S-PPJ-F", [&](const ParallelOptions& p, JoinStats* s) {
    return SPPJFParallel(db, query, p, s);
  });
  const TopKQuery topk_query{query.eps_loc, query.eps_doc, 100};
  time_variant("TOPK-S-PPJ-F", [&](const ParallelOptions& p, JoinStats* s) {
    return TopKSTPSJoinParallel(db, topk_query, TopKVariant::kF, p, s);
  });
  return 0;
}
