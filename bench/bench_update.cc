// Incremental publish benchmark: the O(delta) splice path vs the full
// rebuild, across dirty-user fractions on a fixed-size database.
//
// Two UpdatableDatabase twins are seeded from the same dataset and
// consume the identical mutation stream; one publishes through the
// delta (splice) path, the other has the delta path disabled
// (delta_publish_max_fraction = 0) and rebuilds every survivor. Each
// sweep point dirties a chosen fraction of the users (one in-bounds
// insert per dirty user — locations are copied from the user's existing
// points, so the bounds guard never blocks the splice) and times
// PublishResult::publish_ms on both stores, best of `rounds`.
//
// Correctness is asserted inline: the delta store's result must report
// delta=true (full=false on the twin), and a structural checksum over
// the published databases (SoA columns, token arena, insertion order,
// dictionary, sketch MinHash rows) must match between the two paths —
// any splice bug aborts the bench, which is what makes the
// `delta_full_checksum_match` series a gateable 1.0.
//
// The headline series `delta_publish_speedup` is full_publish_ms over
// delta_publish_ms at the 1%-dirty sweep point; the committed
// full-scale baseline gates it at >= 10 (scripts/check_all.sh).
//
// Usage: bench_update [--smoke] [output.json]  (default BENCH_update.json)

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/update.h"
#include "sketch/sketch.h"

namespace stps::bench {
namespace {

uint64_t Mix(uint64_t h, uint64_t x) {
  h ^= x + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h * 0xBF58476D1CE4E5B9ull;
}

// Structural checksum of a published database: covers the slot layout,
// SoA mirrors, token arena, insertion order, dictionary order, and the
// sketch MinHash rows — everything the splice path stitches together.
uint64_t DatabaseChecksum(const ObjectDatabase& db) {
  uint64_t h = 0x2545F4914F6CDD1Dull;
  h = Mix(h, db.num_objects());
  h = Mix(h, db.num_users());
  for (const double x : db.xs()) h = Mix(h, std::bit_cast<uint64_t>(x));
  for (const double y : db.ys()) h = Mix(h, std::bit_cast<uint64_t>(y));
  for (const UserId u : db.users()) h = Mix(h, u);
  for (const TokenSignature s : db.sigs()) h = Mix(h, s);
  for (const uint32_t o : db.insertion_order()) h = Mix(h, o);
  for (ObjectId id = 0; id < db.num_objects(); ++id) {
    for (const TokenId t : db.ObjectTokens(id)) h = Mix(h, t);
  }
  for (TokenId t = 0; t < db.dictionary().size(); ++t) {
    for (const char c : db.dictionary().TokenString(t)) {
      h = Mix(h, static_cast<unsigned char>(c));
    }
    h = Mix(h, db.dictionary().Frequency(t));
  }
  if (db.has_sketches()) {
    for (const uint64_t m : db.sketches().parts().minhash) h = Mix(h, m);
  }
  return h;
}

// One insert per dirty user, at the location of one of the user's
// published points (guaranteed inside bounds — the splice path's bounds
// guard never trips) with a fresh keyword (the dictionary delta is
// exercised on every round).
std::vector<RawObject> MakeDirtyBatch(const ObjectDatabase& db,
                                      size_t dirty_users, uint64_t round,
                                      Rng* rng) {
  const size_t num_users = db.num_users();
  std::vector<uint32_t> picks(num_users);
  for (size_t u = 0; u < num_users; ++u) picks[u] = static_cast<uint32_t>(u);
  for (size_t i = 0; i < dirty_users && i + 1 < num_users; ++i) {
    std::swap(picks[i], picks[i + rng->NextBelow(num_users - i)]);
  }
  std::vector<RawObject> batch;
  batch.reserve(dirty_users);
  for (size_t i = 0; i < dirty_users; ++i) {
    const UserId u = picks[i];
    const STObject& anchor =
        db.UserObjects(u)[rng->NextBelow(db.UserObjectCount(u))];
    RawObject object;
    object.user = std::string(db.UserName(u));
    object.loc = anchor.loc;
    object.keywords = {"upd" + std::to_string(round) + "_" +
                       std::to_string(i)};
    batch.push_back(object);
  }
  return batch;
}

struct SweepRow {
  double dirty_pct = 0;
  size_t dirty_users = 0;
  double delta_publish_ms = 0;
  double full_publish_ms = 0;
  uint64_t blocks_reused = 0;
  uint64_t blocks_rebuilt = 0;
};

}  // namespace
}  // namespace stps::bench

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;

  bool smoke = false;
  std::string out_path = "BENCH_update.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const size_t users = smoke ? 300 : 3000;
  const size_t rounds = smoke ? 2 : 3;
  const std::vector<double> sweep = smoke
                                        ? std::vector<double>{0.01}
                                        : std::vector<double>{0.005, 0.01,
                                                              0.02, 0.05};

  const ObjectDatabase& dataset = GetDataset(DatasetKind::kCheckinSparse,
                                             users);
  UpdateOptions delta_options;
  delta_options.delta_publish_max_fraction = 0.25;
  UpdatableDatabase delta_db(delta_options);
  delta_db.SeedFrom(dataset);
  UpdateOptions full_options;
  full_options.delta_publish_max_fraction = 0.0;  // always rebuild
  UpdatableDatabase full_db(full_options);
  full_db.SeedFrom(dataset);

  std::printf("%9s %11s %9s %9s %8s\n", "dirty_pct", "dirty_users",
              "delta_ms", "full_ms", "speedup");

  Rng rng(kBenchSeed);
  std::vector<SweepRow> rows;
  uint64_t round_id = 0;
  for (const double fraction : sweep) {
    SweepRow row;
    row.dirty_pct = fraction * 100.0;
    row.dirty_users = std::max<size_t>(
        1, static_cast<size_t>(fraction * static_cast<double>(users)));
    double best_delta = 0, best_full = 0;
    for (size_t r = 0; r < rounds; ++r) {
      const std::vector<RawObject> batch = MakeDirtyBatch(
          delta_db.snapshot()->db, row.dirty_users, round_id++, &rng);
      delta_db.InsertObjects(std::span<const RawObject>(batch));
      full_db.InsertObjects(std::span<const RawObject>(batch));
      const PublishResult delta_result = delta_db.PublishIfDirty();
      const PublishResult full_result = full_db.PublishIfDirty();
      if (!delta_result.published || !delta_result.delta) {
        std::fprintf(stderr,
                     "delta store took the wrong path at %.1f%% dirty\n",
                     row.dirty_pct);
        return 1;
      }
      if (!full_result.published || full_result.delta) {
        std::fprintf(stderr,
                     "full store took the wrong path at %.1f%% dirty\n",
                     row.dirty_pct);
        return 1;
      }
      if (DatabaseChecksum(delta_result.snapshot->db) !=
          DatabaseChecksum(full_result.snapshot->db)) {
        std::fprintf(stderr, "splice diverged from rebuild at %.1f%% dirty\n",
                     row.dirty_pct);
        return 1;
      }
      if (r == 0 || delta_result.publish_ms < best_delta) {
        best_delta = delta_result.publish_ms;
      }
      if (r == 0 || full_result.publish_ms < best_full) {
        best_full = full_result.publish_ms;
      }
    }
    row.delta_publish_ms = best_delta;
    row.full_publish_ms = best_full;
    row.blocks_reused = delta_db.stats().blocks_reused;
    row.blocks_rebuilt = delta_db.stats().blocks_rebuilt;
    rows.push_back(row);
    std::printf("%8.1f%% %11zu %9.3f %9.3f %7.1fx\n", row.dirty_pct,
                row.dirty_users, row.delta_publish_ms, row.full_publish_ms,
                row.full_publish_ms /
                    (row.delta_publish_ms > 0 ? row.delta_publish_ms : 1e-6));
  }

  // Headline: the speedup at the 1%-dirty point (the sweep always has
  // one; in smoke mode it is the only point).
  double delta_publish_speedup = 0.0;
  for (const SweepRow& row : rows) {
    if (row.dirty_pct > 0.9 && row.dirty_pct < 1.1) {
      delta_publish_speedup =
          row.full_publish_ms /
          (row.delta_publish_ms > 0 ? row.delta_publish_ms : 1e-6);
    }
  }

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"update\",\n  \"dataset\": "
               "\"CheckinSparse\",\n  \"users\": %zu,\n  \"rows\": [\n",
               users);
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(json,
                 "%s    {\"dirty_pct\": %.1f, \"dirty_users\": %zu, "
                 "\"delta_publish_ms\": %.3f, \"full_publish_ms\": %.3f, "
                 "\"blocks_reused\": %" PRIu64 ", \"blocks_rebuilt\": %" PRIu64
                 "}",
                 i == 0 ? "" : ",\n", r.dirty_pct, r.dirty_users,
                 r.delta_publish_ms, r.full_publish_ms, r.blocks_reused,
                 r.blocks_rebuilt);
  }
  std::fprintf(json,
               "\n  ],\n  \"delta_publish_speedup\": %.2f,\n"
               "  \"delta_full_checksum_match\": 1.0\n}\n",
               delta_publish_speedup);
  std::fclose(json);

  std::printf("\ndelta publish vs full rebuild at 1%% dirty (%zu users): "
              "%.1fx faster\n",
              users, delta_publish_speedup);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
