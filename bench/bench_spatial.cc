// Microbenchmark for the spatial filter path: the seed per-object probe
// (pointer-walk over ObjectRef lists into insertion-ordered STObject
// records, one WithinDistance call per pair) against the CSR/SoA probe
// the join variants now run (contiguous per-cell coordinate blocks fed to
// the batched CollectWithinEpsLoc kernels, next block prefetched). The
// scalar-kernel row in between attributes the win: seed -> soa_scalar is
// the layout, soa_scalar -> soa_batch is the SIMD dispatch.
//
// Workload model: grid-cell neighbourhood probes as S-PPJ-C issues them —
// a probe point against the nine cell blocks around it, on a dataset
// sized well past the last-level cache so the pointer chase pays real
// memory traffic. `density` (objects per cell) sweeps sparse check-in
// data up to the dense hotspot regime where the batch kernels matter
// most; eps_loc at half a cell pitch lowers selectivity without changing
// the scan set. Both paths visit identical candidate sets, so the match
// checksums must agree exactly — any mismatch aborts the bench.
//
// Usage: bench_spatial [--smoke] [output.json]  (default BENCH_spatial.json)

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "spatial/batch.h"
#include "spatial/geometry.h"
#include "stjoin/object.h"
#include "stjoin/ppj.h"

namespace stps::bench {
namespace {

// One probe workload: `num_points` objects scattered over a C x C grid of
// cells with pitch = eps_loc, held in both layouts at once.
//
// Seed layout: STObject records in insertion order (spatially random, so
// a cell's members are scattered across the whole array) with per-cell
// ObjectRef vectors — the pre-PR UserPartition shape.
//
// CSR layout: one counting-sort pass groups the same points cell-major
// into flat xs/ys arrays with per-cell [begin, end) ranges — the shape
// MakeUserLayout builds.
struct SpatialWorkload {
  size_t cells_per_side = 0;
  double pitch = 0.0;

  std::vector<STObject> records;             // insertion order
  std::vector<std::vector<ObjectRef>> refs;  // per cell, seed layout

  std::vector<double> xs, ys;                // CSR layout, cell-major
  std::vector<uint32_t> cell_begin;          // size cells + 1
  size_t max_cell_size = 0;

  std::vector<Point> probes;
};

SpatialWorkload BuildWorkload(size_t num_points, size_t density,
                              size_t num_probes, Rng& rng) {
  SpatialWorkload w;
  w.cells_per_side = std::max<size_t>(
      3, static_cast<size_t>(std::sqrt(
             static_cast<double>(num_points) / static_cast<double>(density))));
  w.pitch = 1.0;  // eps_loc == pitch; coordinates in cell units
  const size_t side = w.cells_per_side;

  w.records.resize(num_points);
  std::vector<uint32_t> cell_of(num_points);
  std::vector<uint32_t> count(side * side, 0);
  for (size_t i = 0; i < num_points; ++i) {
    const size_t cx = rng.NextBelow(side);
    const size_t cy = rng.NextBelow(side);
    STObject& o = w.records[i];
    o.id = static_cast<ObjectId>(i);
    o.loc = {(static_cast<double>(cx) + rng.NextDouble()) * w.pitch,
             (static_cast<double>(cy) + rng.NextDouble()) * w.pitch};
    const uint32_t cell = static_cast<uint32_t>(cy * side + cx);
    cell_of[i] = cell;
    ++count[cell];
  }

  // Seed layout: per-cell ref vectors pointing into the shuffled records.
  w.refs.resize(side * side);
  for (size_t c = 0; c < w.refs.size(); ++c) w.refs[c].reserve(count[c]);
  for (size_t i = 0; i < num_points; ++i) {
    w.refs[cell_of[i]].push_back(
        ObjectRef{&w.records[i], static_cast<uint32_t>(i)});
  }

  // CSR layout: stable counting sort of the same points, cell-major.
  w.cell_begin.resize(side * side + 1, 0);
  for (size_t c = 0; c < side * side; ++c) {
    w.cell_begin[c + 1] = w.cell_begin[c] + count[c];
    w.max_cell_size = std::max<size_t>(w.max_cell_size, count[c]);
  }
  w.xs.resize(num_points);
  w.ys.resize(num_points);
  std::vector<uint32_t> cursor(w.cell_begin.begin(), w.cell_begin.end() - 1);
  for (size_t i = 0; i < num_points; ++i) {
    const uint32_t slot = cursor[cell_of[i]]++;
    w.xs[slot] = w.records[i].loc.x;
    w.ys[slot] = w.records[i].loc.y;
  }

  w.probes.reserve(num_probes);
  const double extent = static_cast<double>(side) * w.pitch;
  for (size_t i = 0; i < num_probes; ++i) {
    w.probes.push_back({rng.NextDouble() * extent, rng.NextDouble() * extent});
  }
  return w;
}

// The nine-cell neighbourhood of a probe, clamped to the grid.
struct Neighbourhood {
  uint32_t cells[9];
  size_t n = 0;
};

Neighbourhood CellsAround(const SpatialWorkload& w, const Point& probe) {
  Neighbourhood out;
  const auto side = static_cast<int64_t>(w.cells_per_side);
  const auto cx = std::clamp<int64_t>(
      static_cast<int64_t>(probe.x / w.pitch), 0, side - 1);
  const auto cy = std::clamp<int64_t>(
      static_cast<int64_t>(probe.y / w.pitch), 0, side - 1);
  for (int64_t dy = -1; dy <= 1; ++dy) {
    for (int64_t dx = -1; dx <= 1; ++dx) {
      const int64_t x = cx + dx;
      const int64_t y = cy + dy;
      if (x < 0 || x >= side || y < 0 || y >= side) continue;
      out.cells[out.n++] = static_cast<uint32_t>(y * side + x);
    }
  }
  return out;
}

// Seed path: walk the cell's ObjectRef vector, chase each record pointer,
// test one pair at a time, record matched ids (the mark-style store the
// join's verification stage performs).
uint64_t ProbePassSeed(const SpatialWorkload& w, double eps,
                       std::vector<uint32_t>& hits) {
  uint64_t matched = 0;
  for (const Point& probe : w.probes) {
    const Neighbourhood hood = CellsAround(w, probe);
    for (size_t c = 0; c < hood.n; ++c) {
      const std::vector<ObjectRef>& cell = w.refs[hood.cells[c]];
      size_t m = 0;
      for (const ObjectRef& ref : cell) {
        if (WithinDistance(probe, ref.object->loc, eps)) {
          hits[m++] = ref.object->id;
        }
      }
      matched += m;
    }
  }
  return matched;
}

// CSR path: stream each cell's contiguous coordinate block through the
// eps_loc kernel, prefetching the next block — exactly the shape of
// PPJCrossMarkBatch. `Kernel` is the dispatched or the scalar collect.
template <typename Kernel>
uint64_t ProbePassCsr(const SpatialWorkload& w, double eps,
                      std::vector<uint32_t>& hits, Kernel&& kernel) {
  uint64_t matched = 0;
  for (const Point& probe : w.probes) {
    const Neighbourhood hood = CellsAround(w, probe);
    for (size_t c = 0; c < hood.n; ++c) {
      if (c + 1 < hood.n) {
        const uint32_t next = w.cell_begin[hood.cells[c + 1]];
        __builtin_prefetch(w.xs.data() + next);
        __builtin_prefetch(w.ys.data() + next);
      }
      const uint32_t begin = w.cell_begin[hood.cells[c]];
      const uint32_t end = w.cell_begin[hood.cells[c] + 1];
      matched += kernel(probe, w.xs.data() + begin, w.ys.data() + begin,
                        end - begin, eps, hits.data());
    }
  }
  return matched;
}

struct SpatialTiming {
  double seed_ms = 0;
  double soa_scalar_ms = 0;
  double soa_batch_ms = 0;
  uint64_t matches = 0;
  uint64_t scanned = 0;
};

// Best-of-`repeats` wall time of one full probe pass (minimum is the
// noise-robust statistic for fixed work).
template <typename Body>
double BestOfMs(int repeats, Body&& body) {
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    body();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

SpatialTiming TimePaths(const SpatialWorkload& w, double eps, int repeats) {
  SpatialTiming out;
  std::vector<uint32_t> hits(w.max_cell_size + 1);
  uint64_t seed_matches = 0;
  uint64_t scalar_matches = 0;
  uint64_t batch_matches = 0;

  out.seed_ms = BestOfMs(
      repeats, [&] { seed_matches = ProbePassSeed(w, eps, hits); });
  out.soa_scalar_ms = BestOfMs(repeats, [&] {
    scalar_matches = ProbePassCsr(
        w, eps, hits,
        [](const Point& p, const double* xs, const double* ys, size_t n,
           double e, uint32_t* o) {
          return CollectWithinEpsLocScalar(p, xs, ys, n, e, o);
        });
  });
  out.soa_batch_ms = BestOfMs(repeats, [&] {
    batch_matches = ProbePassCsr(
        w, eps, hits,
        [](const Point& p, const double* xs, const double* ys, size_t n,
           double e, uint32_t* o) {
          return CollectWithinEpsLoc(p, xs, ys, n, e, o);
        });
  });

  if (seed_matches != scalar_matches || seed_matches != batch_matches) {
    std::fprintf(stderr,
                 "checksum mismatch: seed=%" PRIu64 " scalar=%" PRIu64
                 " batch=%" PRIu64 "\n",
                 seed_matches, scalar_matches, batch_matches);
    std::abort();
  }
  out.matches = seed_matches;
  for (const Point& probe : w.probes) {
    const Neighbourhood hood = CellsAround(w, probe);
    for (size_t c = 0; c < hood.n; ++c) {
      out.scanned +=
          w.cell_begin[hood.cells[c] + 1] - w.cell_begin[hood.cells[c]];
    }
  }
  return out;
}

}  // namespace
}  // namespace stps::bench

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;

  bool smoke = false;
  std::string out_path = "BENCH_spatial.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  // Full scale: 16M points. The seed layout's record array alone is
  // ~1 GB and even the packed coordinate arrays (256 MB) exceed the LLC,
  // so every probe block is a genuine memory access on both paths. Smoke
  // scale just proves the paths run and agree.
  const size_t num_points = smoke ? (size_t{1} << 15) : (size_t{1} << 24);
  const int repeats = smoke ? 1 : 5;
  // Probe count adapts so each row scans a comparable number of
  // candidates regardless of density.
  const size_t scan_budget = smoke ? (size_t{1} << 18) : (size_t{1} << 26);

  struct Row {
    size_t density;       // objects per grid cell
    double eps_factor;    // eps_loc as a fraction of the cell pitch
    const char* regime;
  };
  // Densities span sparse check-in data to the dense-hotspot regime the
  // batch kernels target; the half-pitch rows keep the scan set identical
  // while matching ~4x fewer pairs (lighter store traffic, same loads).
  const Row rows[] = {
      {8, 1.0, "sparse"},   {8, 0.5, "sparse"},
      {32, 1.0, "medium"},  {32, 0.5, "medium"},
      {128, 1.0, "dense"},  {128, 0.5, "dense"},
  };

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"spatial\",\n  \"points\": %zu,\n"
               "  \"repeats\": %d,\n  \"avx2\": %s,\n  \"rows\": [\n",
               num_points, repeats, BatchKernelsUseAvx2() ? "true" : "false");

  std::printf("batch kernels: %s\n",
              BatchKernelsUseAvx2() ? "AVX2" : "scalar dispatch");
  std::printf("%8s %6s %8s %9s %10s %10s %8s %8s\n", "density", "eps",
              "probes", "seed_ms", "scalar_ms", "batch_ms", "layout", "total");

  Rng rng(kBenchSeed);
  bool first = true;
  double high_density_speedup = 0;
  double min_speedup = 1e9;
  for (const Row& row : rows) {
    const size_t num_probes =
        std::max<size_t>(512, scan_budget / (9 * row.density));
    const SpatialWorkload w =
        BuildWorkload(num_points, row.density, num_probes, rng);
    const double eps = row.eps_factor * w.pitch;
    const SpatialTiming t = TimePaths(w, eps, repeats);
    const double layout_speedup = t.seed_ms / t.soa_scalar_ms;
    const double speedup = t.seed_ms / t.soa_batch_ms;
    min_speedup = std::min(min_speedup, speedup);
    if (row.density == 128 && row.eps_factor == 1.0) {
      high_density_speedup = speedup;
    }
    std::printf("%8zu %6.2f %8zu %9.1f %10.1f %10.1f %7.2fx %7.2fx\n",
                row.density, row.eps_factor, num_probes, t.seed_ms,
                t.soa_scalar_ms, t.soa_batch_ms, layout_speedup, speedup);
    std::fprintf(
        json,
        "%s    {\"density\": %zu, \"eps_factor\": %.2f, \"regime\": \"%s\", "
        "\"probes\": %zu, \"scanned\": %" PRIu64 ", \"matches\": %" PRIu64
        ", \"seed_ms\": %.2f, \"soa_scalar_ms\": %.2f, "
        "\"soa_batch_ms\": %.2f, \"layout_speedup\": %.2f, "
        "\"speedup\": %.2f}",
        first ? "" : ",\n", row.density, row.eps_factor, row.regime,
        num_probes, t.scanned, t.matches, t.seed_ms, t.soa_scalar_ms,
        t.soa_batch_ms, layout_speedup, speedup);
    first = false;
  }
  std::fprintf(json,
               "\n  ],\n  \"high_density_speedup\": %.2f,\n"
               "  \"min_speedup\": %.2f\n}\n",
               high_density_speedup, min_speedup);
  std::fclose(json);
  std::printf("\nhigh-density speedup (batched CSR vs seed per-object): "
              "%.2fx (min across rows %.2fx)\n",
              high_density_speedup, min_speedup);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
