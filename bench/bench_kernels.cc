// Microbenchmark for the text/intersect.h kernel family: branch-reduced
// merge vs galloping vs the signature-gated Jaccard predicate, swept over
// size ratios and Jaccard thresholds. Establishes the perf-trajectory
// baseline for the verification stage (BENCH_kernels.json).
//
// Workload model: candidate pairs as the join verification stage sees
// them — the prefix/size filters have passed, most pairs still fail the
// exact test. `similarity` controls the fraction of shared tokens, so
// "low" rows approximate the low-similarity regime where the signature
// gate pays off and "high" rows bound its overhead when most pairs match.
//
// Usage: bench_kernels [--smoke] [output.json]   (default BENCH_kernels.json)
// --smoke shrinks the token budget and repeat count to a seconds-long run
// for CI smoke checks; its timings are cache-resident and not comparable
// to a committed full-scale baseline.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "text/intersect.h"
#include "text/similarity.h"
#include "text/token_set.h"

namespace stps::bench {
namespace {

// Candidate pairs in the CSR layout the join verification stage sees:
// all token sets in one flat arena, per-pair spans plus 16 bytes of
// header (sizes live in the offsets, signatures inline). Sized well past
// the last-level cache so the kernels pay real memory traffic — the
// regime where skipping the token arena entirely is the gate's win.
struct PairWorkload {
  std::vector<TokenId> arena;
  struct Pair {
    uint32_t a_begin, a_end, b_begin, b_end;
    TokenSignature sa, sb;
  };
  std::vector<Pair> pairs;

  std::span<const TokenId> A(size_t i) const {
    return {arena.data() + pairs[i].a_begin,
            arena.data() + pairs[i].a_end};
  }
  std::span<const TokenId> B(size_t i) const {
    return {arena.data() + pairs[i].b_begin,
            arena.data() + pairs[i].b_end};
  }
};

// Builds candidate pairs. Sizes |a| = base, |b| = base * ratio; roughly
// `similarity` of the smaller side's tokens also occur in the other set,
// drawn from a shared pool (plus disjoint per-side pools, so dissimilar
// pairs share almost nothing). The pair count adapts so every workload
// streams roughly `token_budget` tokens regardless of set sizes.
PairWorkload BuildWorkload(size_t token_budget, size_t base, size_t ratio,
                           double similarity, Rng& rng) {
  PairWorkload w;
  const size_t count =
      std::max<size_t>(2000, token_budget / (base * (1 + ratio)));
  const TokenId kSharedPool = 1u << 20;
  const TokenId kSideOffset = 1u << 24;
  TokenVector a, b;
  for (size_t p = 0; p < count; ++p) {
    a.clear();
    b.clear();
    for (size_t i = 0; i < base; ++i) {
      if (rng.Bernoulli(similarity)) {
        const TokenId t = static_cast<TokenId>(rng.NextBelow(kSharedPool));
        a.push_back(t);
        b.push_back(t);
      } else {
        a.push_back(static_cast<TokenId>(rng.NextBelow(kSharedPool)));
      }
    }
    while (b.size() < base * ratio) {
      b.push_back(kSideOffset +
                  static_cast<TokenId>(rng.NextBelow(kSharedPool)));
    }
    NormalizeTokenSet(&a);
    NormalizeTokenSet(&b);
    PairWorkload::Pair pair;
    pair.a_begin = static_cast<uint32_t>(w.arena.size());
    w.arena.insert(w.arena.end(), a.begin(), a.end());
    pair.a_end = static_cast<uint32_t>(w.arena.size());
    pair.b_begin = static_cast<uint32_t>(w.arena.size());
    w.arena.insert(w.arena.end(), b.begin(), b.end());
    pair.b_end = static_cast<uint32_t>(w.arena.size());
    pair.sa = ComputeSignature(a);
    pair.sb = ComputeSignature(b);
    w.pairs.push_back(pair);
  }
  return w;
}

struct KernelTiming {
  double merge_ns = 0;      // ungated exact predicate, merge kernel only
  double heuristic_ns = 0;  // ungated exact predicate, size-heuristic kernel
  double gated_ns = 0;      // signature gate + heuristic kernel
  uint64_t matches = 0;
  uint64_t signature_rejections = 0;
};

// An ungated Jaccard predicate pinned to the merge kernel — the pre-PR
// baseline every other row is measured against.
bool MergeOnlyJaccardAtLeast(std::span<const TokenId> a,
                             std::span<const TokenId> b, double threshold) {
  if (threshold <= 0.0) return true;
  if (a.empty() || b.empty()) return false;
  const size_t required = MinOverlapForJaccard(a.size(), b.size(), threshold);
  const size_t overlap = IntersectCountMerge(a, b);
  if (overlap < required) return false;
  return static_cast<double>(overlap) >=
         threshold * static_cast<double>(a.size() + b.size() - overlap);
}

// Best-of-`repeats` per-pair nanoseconds for one full pass of `body`
// over the workload: the minimum is the standard noise-robust statistic
// for a fixed-work microbenchmark (anything above it is interference).
template <typename Body>
double BestOfNs(size_t pairs, int repeats, Body&& body) {
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    body();
    best = std::min(best,
                    timer.ElapsedMillis() * 1e6 / static_cast<double>(pairs));
  }
  return best;
}

KernelTiming TimeKernels(const PairWorkload& w, double threshold,
                         int repeats) {
  KernelTiming out;
  const size_t n = w.pairs.size();
  uint64_t sink = 0;

  out.merge_ns = BestOfNs(n, repeats, [&] {
    for (size_t i = 0; i < n; ++i) {
      sink += MergeOnlyJaccardAtLeast(w.A(i), w.B(i), threshold);
    }
  });

  out.heuristic_ns = BestOfNs(n, repeats, [&] {
    for (size_t i = 0; i < n; ++i) {
      sink += JaccardAtLeastKernel(w.A(i), w.B(i), threshold);
    }
  });

  uint64_t rejections = 0;
  uint64_t matches = 0;
  out.gated_ns = BestOfNs(n, repeats, [&] {
    rejections = 0;
    matches = 0;
    for (size_t i = 0; i < n; ++i) {
      const PairWorkload::Pair& p = w.pairs[i];
      matches += SignatureGatedJaccardAtLeast(w.A(i), p.sa, w.B(i), p.sb,
                                              threshold, &rejections);
    }
  });
  out.matches = matches;
  out.signature_rejections = rejections;

  if (sink == 0xdeadbeef) std::printf("(unreachable)\n");  // defeat DCE
  return out;
}

}  // namespace
}  // namespace stps::bench

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;

  bool smoke = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  // ~64 MB of token data per workload: far past the LLC, so each pass
  // pays real memory traffic (the verification stage of a large join is
  // exactly such a cold sweep over the CSR arena).
  const size_t kTokenBudget = smoke ? (256u << 10) : (16u << 20);
  const int kRepeats = smoke ? 1 : 5;

  struct Row {
    size_t base;
    size_t ratio;
    double similarity;
    const char* regime;
  };
  // Bases 4-32 cover the document sizes the spatio-textual datasets
  // produce (a handful of keywords per object); 128 stresses the
  // saturation limit of the 64-bit bitmap. Ratios > 1 exercise the
  // galloping crossover.
  const Row rows[] = {
      {4, 1, 0.05, "low"},    {4, 1, 0.60, "high"},
      {8, 1, 0.05, "low"},    {8, 1, 0.60, "high"},
      {16, 1, 0.05, "low"},   {16, 1, 0.60, "high"},
      {32, 1, 0.05, "low"},   {32, 1, 0.60, "high"},
      {128, 1, 0.05, "low"},  {128, 1, 0.60, "high"},
      {8, 16, 0.05, "low"},   {8, 16, 0.60, "high"},
      {8, 64, 0.05, "low"},   {8, 64, 0.60, "high"},
      {32, 16, 0.05, "low"},  {32, 16, 0.60, "high"},
  };
  const double thresholds[] = {0.3, 0.5, 0.8};

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"kernels\",\n"
               "  \"token_budget\": %zu,\n"
               "  \"repeats\": %d,\n  \"rows\": [\n",
               kTokenBudget, kRepeats);

  std::printf("%5s %6s %5s %6s %9s %9s %9s %8s %7s\n", "base", "ratio",
              "sim", "thr", "merge_ns", "heur_ns", "gated_ns", "speedup",
              "sigrej%");
  Rng rng(kBenchSeed);
  bool first = true;
  double low_sim_speedup_min = 1e9;
  // Suite-level aggregate: total verification time for the whole
  // low-similarity workload suite (each row weighted by its pair count),
  // merge-only vs gated — "how much faster is the verification stage of a
  // low-similarity join".
  double low_sim_merge_total_ns = 0;
  double low_sim_gated_total_ns = 0;
  for (const Row& row : rows) {
    const PairWorkload w = BuildWorkload(kTokenBudget, row.base, row.ratio,
                                         row.similarity, rng);
    for (const double threshold : thresholds) {
      const KernelTiming t = TimeKernels(w, threshold, kRepeats);
      const double speedup = t.merge_ns / t.gated_ns;
      const double sigrej_pct =
          100.0 * static_cast<double>(t.signature_rejections) /
          static_cast<double>(w.pairs.size());
      if (row.similarity < 0.2) {
        low_sim_speedup_min = std::min(low_sim_speedup_min, speedup);
        low_sim_merge_total_ns +=
            t.merge_ns * static_cast<double>(w.pairs.size());
        low_sim_gated_total_ns +=
            t.gated_ns * static_cast<double>(w.pairs.size());
      }
      std::printf("%5zu %6zu %5.2f %6.2f %9.1f %9.1f %9.1f %7.2fx %6.1f%%\n",
                  row.base, row.ratio, row.similarity, threshold, t.merge_ns,
                  t.heuristic_ns, t.gated_ns, speedup, sigrej_pct);
      std::fprintf(
          json,
          "%s    {\"base\": %zu, \"ratio\": %zu, \"similarity\": %.2f, "
          "\"regime\": \"%s\", \"threshold\": %.2f, \"pairs\": %zu, "
          "\"merge_ns\": %.1f, "
          "\"heuristic_ns\": %.1f, \"gated_ns\": %.1f, \"speedup\": %.2f, "
          "\"matches\": %" PRIu64 ", \"signature_rejections\": %" PRIu64 "}",
          first ? "" : ",\n", row.base, row.ratio, row.similarity, row.regime,
          threshold, w.pairs.size(), t.merge_ns, t.heuristic_ns, t.gated_ns,
          speedup, t.matches, t.signature_rejections);
      first = false;
    }
  }
  const double low_sim_workload_speedup =
      low_sim_merge_total_ns / low_sim_gated_total_ns;
  std::fprintf(json,
               "\n  ],\n  \"low_similarity_min_speedup\": %.2f,\n"
               "  \"low_similarity_workload_speedup\": %.2f\n}\n",
               low_sim_speedup_min, low_sim_workload_speedup);
  std::fclose(json);
  std::printf("\nlow-similarity workload speedup (gated vs merge): %.2fx"
              " (per-row min %.2fx)\n",
              low_sim_workload_speedup, low_sim_speedup_min);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
