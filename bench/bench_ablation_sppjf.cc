// Ablation A1: which S-PPJ-F ingredient buys the speedup?
//   full          — sigma_bar candidate bound + PPJ-B refinement bound
//   no-sigma-bar  — refinement bound only
//   no-refine     — candidate bound only (refinement runs to completion)
//   neither       — token-probing candidate generation alone
// Compared on the TwitterLike regime at the paper's default thresholds.

#include <benchmark/benchmark.h>

#include "core/sppj_f.h"
#include "datagen/generator.h"
#include "datagen/presets.h"

namespace {

using stps::DatasetKind;
using stps::GenerateDataset;
using stps::ObjectDatabase;
using stps::PresetSpec;
using stps::STPSQuery;

const ObjectDatabase& Dataset() {
  static const ObjectDatabase* db = new ObjectDatabase(
      GenerateDataset(PresetSpec(DatasetKind::kTwitterLike, 250, 5)));
  return *db;
}

void RunAblation(benchmark::State& state, bool sigma_bound,
                 bool refine_bound) {
  const ObjectDatabase& db = Dataset();
  STPSQuery query = stps::DefaultQuery(DatasetKind::kTwitterLike);
  query.eps_u = 0.2;
  size_t pairs = 0;
  for (auto _ : state) {
    pairs = SPPJFAblation(db, query, sigma_bound, refine_bound).size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_SPPJF_Full(benchmark::State& state) {
  RunAblation(state, true, true);
}
void BM_SPPJF_NoSigmaBar(benchmark::State& state) {
  RunAblation(state, false, true);
}
void BM_SPPJF_NoRefineBound(benchmark::State& state) {
  RunAblation(state, true, false);
}
void BM_SPPJF_Neither(benchmark::State& state) {
  RunAblation(state, false, false);
}

}  // namespace

BENCHMARK(BM_SPPJF_Full)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SPPJF_NoSigmaBar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SPPJF_NoRefineBound)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SPPJF_Neither)->Unit(benchmark::kMillisecond);
