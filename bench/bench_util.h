// Shared helpers for the paper-reproduction benchmark drivers.
//
// Every driver prints the rows/series of one table or figure of the
// paper. Absolute times differ from the paper's testbed (Java, i5-2400);
// the reproduction target is the *relative* behaviour — who wins, by
// roughly what factor, and where the crossovers are. Dataset sizes are
// scaled down so each driver finishes in minutes on one core; pass a
// user-count argument to scale up.

#ifndef STPS_BENCH_BENCH_UTIL_H_
#define STPS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/join_stats.h"
#include "core/stpsjoin.h"
#include "datagen/generator.h"
#include "datagen/presets.h"

namespace stps::bench {

inline constexpr uint64_t kBenchSeed = 20160315;  // EDBT 2016 opening day

/// All three dataset regimes, in the paper's presentation order.
inline const std::vector<DatasetKind>& AllKinds() {
  static const std::vector<DatasetKind> kinds = {DatasetKind::kGeoTextLike,
                                                 DatasetKind::kFlickrLike,
                                                 DatasetKind::kTwitterLike};
  return kinds;
}

/// Generates (and memoises per process) the preset dataset at a scale.
inline const ObjectDatabase& GetDataset(DatasetKind kind, size_t num_users) {
  struct Entry {
    DatasetKind kind;
    size_t num_users;
    ObjectDatabase db;
  };
  static std::vector<Entry>* cache = new std::vector<Entry>();
  for (const Entry& e : *cache) {
    if (e.kind == kind && e.num_users == num_users) return e.db;
  }
  cache->push_back(Entry{
      kind, num_users,
      GenerateDataset(PresetSpec(kind, num_users, kBenchSeed))});
  return cache->back().db;
}

/// Per-algorithm JoinStats accumulated over every timed run of the
/// process; printed once at process exit so each bench reports filter
/// effectiveness alongside its timings.
inline std::vector<std::pair<std::string, JoinStats>>& StatsRegistry() {
  static auto* entries =
      new std::vector<std::pair<std::string, JoinStats>>();
  return *entries;
}

inline void PrintStatsRegistry() {
  const auto& entries = StatsRegistry();
  if (entries.empty()) return;
  std::printf(
      "\nFilter effectiveness (accumulated over all timed runs):\n");
  for (const auto& [label, stats] : entries) {
    std::printf("  %-14s %s\n", label.c_str(),
                FormatJoinStats(stats).c_str());
  }
}

/// Merges `stats` into the row named `label`, creating it on first use.
/// All-zero stats (the brute-force baselines are uninstrumented) are
/// dropped so the report only lists meaningful rows.
inline void RecordJoinStats(std::string_view label, const JoinStats& stats) {
  if (stats == JoinStats{}) return;
  auto& entries = StatsRegistry();
  if (entries.empty()) std::atexit(PrintStatsRegistry);
  for (auto& [name, accumulated] : entries) {
    if (name == label) {
      accumulated.Merge(stats);
      return;
    }
  }
  entries.emplace_back(std::string(label), stats);
}

/// Times one STPSJoin run; reports milliseconds and the result size.
/// The run's JoinStats land in the exit report (counter upkeep is cheap
/// relative to the join work, so timings stay representative).
inline double TimeJoin(const ObjectDatabase& db, const STPSQuery& query,
                       JoinAlgorithm algorithm, int fanout,
                       size_t* result_size) {
  JoinOptions options;
  options.algorithm = algorithm;
  options.rtree_fanout = fanout;
  JoinStats stats;
  Timer timer;
  const auto result = RunSTPSJoin(db, query, options, &stats);
  const double ms = timer.ElapsedMillis();
  if (result_size != nullptr) *result_size = result.size();
  RecordJoinStats(JoinAlgorithmName(algorithm), stats);
  return ms;
}

/// Times one top-k run.
inline double TimeTopK(const ObjectDatabase& db, const TopKQuery& query,
                       TopKAlgorithm algorithm, size_t* result_size) {
  JoinStats stats;
  Timer timer;
  const auto result = RunTopKSTPSJoin(db, query, algorithm, &stats);
  const double ms = timer.ElapsedMillis();
  if (result_size != nullptr) *result_size = result.size();
  RecordJoinStats(TopKAlgorithmName(algorithm), stats);
  return ms;
}

/// First CLI argument as a size, or `fallback`.
inline size_t ArgSize(int argc, char** argv, int index, size_t fallback) {
  if (argc > index) {
    const size_t v = std::strtoul(argv[index], nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace stps::bench

#endif  // STPS_BENCH_BENCH_UTIL_H_
