// Reproduces Table 3: threshold auto-tuning cost. For each dataset, the
// initial (relaxed-threshold) S-PPJ-F run time, then the tuning time and
// iteration count needed to reach result-set targets of 5, 25 and 50
// pairs. The paper's observation: the initial join dominates total cost;
// tuning itself is cheap because only surviving pairs are re-verified.
//
// Usage: bench_table3_tuning [num_users]

#include "bench_util.h"
#include "core/tuning.h"

namespace {

stps::STPSQuery RelaxedInitial(stps::DatasetKind kind) {
  // The minimum thresholds of the Figure 5 sweeps, as in the paper.
  stps::STPSQuery q = stps::DefaultQuery(kind);
  q.eps_loc *= 2;           // looser spatial radius
  q.eps_doc -= 0.1;         // looser textual threshold
  q.eps_u -= 0.1;           // looser user threshold
  if (q.eps_doc < 0.05) q.eps_doc = 0.05;
  if (q.eps_u < 0.05) q.eps_u = 0.05;
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;
  const size_t num_users = ArgSize(argc, argv, 1, 400);
  const size_t targets[] = {5, 25, 50};

  std::printf("Table 3: parameter tuning; initial S-PPJ-F ms, then tuning "
              "ms (iterations) per target (%zu users)\n\n",
              num_users);
  std::printf("%-14s %12s", "", "S-PPJ-F");
  for (const size_t t : targets) std::printf("   target=%-8zu", t);
  std::printf("\n");
  for (const DatasetKind kind : AllKinds()) {
    const ObjectDatabase& db = GetDataset(kind, num_users);
    std::printf("%-14s", DatasetKindName(kind));
    bool first = true;
    for (const size_t target : targets) {
      TuningOptions options;
      options.initial = RelaxedInitial(kind);
      options.target_size = target;
      options.seed = kBenchSeed;
      const TuningResult result = TuneThresholds(db, options);
      if (first) {
        std::printf(" %12.1f", result.initial_join_millis);
        first = false;
      }
      std::printf("   %7.1f (%3zu)", result.tuning_millis,
                  result.iterations);
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: initial S-PPJ-F run dominates; tuning takes "
              "a fraction of it with a handful of iterations.\n");
  return 0;
}
