// Reproduces Table 1: descriptive statistics of the evaluation datasets.
//
// Paper values (real crawls)            vs. this harness (synthetic):
//   Twitter : 2.08 (1.43) tok/obj, 6.25 (141.8) obj/tok, 243.1 (344.9) obj/usr
//   Flickr  : 8.04 (8.15) tok/obj, 26.41 (1191) obj/tok,  98.7 (419.9) obj/usr
//   GeoText : 1.64 (1.01) tok/obj, 3.53 (39.4) obj/tok,   17.5 (13.0) obj/usr
//
// Usage: bench_table1_datasets [num_users]

#include "bench_util.h"
#include "datagen/dataset_stats.h"

int main(int argc, char** argv) {
  using namespace stps;
  using namespace stps::bench;
  const size_t num_users = ArgSize(argc, argv, 1, 1500);

  std::printf("Table 1: dataset characteristics (synthetic, %zu users per "
              "dataset)\n\n",
              num_users);
  std::printf("%-12s %9s %7s   %-16s  %-18s  %-17s\n", "Dataset", "Objects",
              "Users", "Tokens/Object", "Objects/Token", "Objects/User");
  for (const DatasetKind kind :
       {DatasetKind::kTwitterLike, DatasetKind::kFlickrLike,
        DatasetKind::kGeoTextLike}) {
    const ObjectDatabase& db = GetDataset(kind, num_users);
    const DatasetStats stats = ComputeDatasetStats(db);
    std::printf("%s\n", stats.ToTableRow(DatasetKindName(kind)).c_str());
  }
  std::printf(
      "\npaper (full-size crawls):\n"
      "Twitter      9,724,579  40,000    2.08 (  1.43)     6.25 ( "
      " 141.80)    243.11 ( 344.86)\n"
      "Flickr       1,116,348  11,306    8.04 (  8.15)    26.41 "
      "( 1191.09)     98.73 ( 419.92)\n"
      "GeoText        165,733   9,461    1.64 (  1.01)     3.53 (  "
      " 39.36)     17.52 (  12.99)\n");
  return 0;
}
